//! # matelda-serve
//!
//! A crash-tolerant, multi-tenant detection daemon (and its client) for
//! the Matelda pipeline — detection-as-a-service where **robustness is
//! the contract**:
//!
//! * a bounded admission gate with explicit [`Response::Busy`]
//!   backpressure (overload never grows memory without bound);
//! * per-request deadlines that degrade through the stage watchdog and
//!   `FaultPolicy::Skip` instead of killing anything;
//! * request-level fault quarantine — a panicking run answers its own
//!   client with a structured error while the shared worker pool keeps
//!   serving everyone else;
//! * per-stage checkpointing under a manifest-keyed run directory, so a
//!   SIGKILLed daemon plus a retrying client resume from the stage
//!   frontier and produce a result digest-equal to an uninterrupted
//!   run, at any thread count;
//! * a fingerprint-keyed, checksum-validated memo-cache — an unchanged
//!   lake answers without running a single stage, and a corrupted entry
//!   is evicted and recomputed, never served;
//! * a disk budget (`--state-budget-bytes`) enforced at write time by a
//!   budgeted [`matelda_ckpt::Vfs`], kept livable by LRU eviction of
//!   completed state ([`storage`]) — an active run degrades or answers
//!   [`ErrorKind::StorageFull`], never panics and never tears state;
//! * graceful shutdown that stops admission, drains in-flight runs and
//!   acknowledges before exit.
//!
//! Transport is deliberately minimal: length-prefixed frames over TCP
//! on localhost, carrying totally-decodable messages (see [`proto`]).
//! The full semantics are specified in DESIGN.md §11.

pub mod cache;
pub mod client;
pub mod proto;
pub mod registry;
pub mod server;
pub mod storage;

pub use cache::{CacheRead, MemoCache};
pub use client::{request, request_with_retry, ClientError, Retry};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DetectJob, DetectOutcome, ErrorKind, FrameError, Request, Response, MAX_FRAME, PROTO_VERSION,
};
pub use registry::{LakePair, Registry};
pub use server::{serve, Latch, ServeOptions, ServerHandle};
pub use storage::{ActiveKey, StateStore};
