//! The daemon: a TCP accept loop, a bounded admission gate, one shared
//! worker pool, and a per-request robustness envelope.
//!
//! ## The robustness contract (DESIGN.md §11)
//!
//! * **Admission is bounded.** At most `max_active` detections execute
//!   at once; at most `max_queued` more wait. Anything beyond that gets
//!   an immediate [`Response::Busy`] — overload degrades to explicit
//!   backpressure, never to unbounded memory growth.
//! * **Deadlines degrade, never kill.** A request deadline becomes the
//!   pipeline's stage watchdog under `FaultPolicy::Skip`: the run
//!   quarantines what it must and returns a (reported) degraded result.
//! * **Faults are request-scoped.** Every run executes under
//!   `catch_unwind`; a panicking detection answers *its* client with
//!   [`ErrorKind::Faulted`] and the worker pool — whose threads already
//!   survive item panics — keeps serving everyone else.
//! * **Results are memoized safely.** The memo-cache key is the run
//!   manifest hash (config, lake fingerprint, seed, budget); entries
//!   are checksum-validated on read and recomputed on any damage.
//! * **Every run is durable.** Detections checkpoint per stage under
//!   `state_dir/runs/<key>`, so a killed daemon resumes a retried
//!   request from its stage frontier instead of starting over.
//! * **Shutdown drains.** A [`Request::Shutdown`] stops admission,
//!   waits for in-flight runs (each checkpointing as it goes), then
//!   acknowledges and exits.

use crate::cache::{CacheRead, MemoCache};
use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, DetectJob, DetectOutcome, ErrorKind,
    FrameError, Request, Response,
};
use crate::registry::Registry;
use crate::storage::{ActiveKey, StateStore};
use matelda_ckpt::{dir_bytes, Vfs};
use matelda_core::{
    CkptError, DomainFolding, Durability, DurabilityPolicy, FaultPolicy, Matelda, MateldaConfig,
    TrainingStrategy,
};
use matelda_exec::{panic_message, Executor};
use matelda_obs::{Obs, Val};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A reusable open/closed latch (test seam for deterministic admission
/// tests: hold every run at its start, fill the queue, then open).
#[derive(Debug, Default)]
pub struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    /// A closed latch.
    pub fn new() -> Arc<Latch> {
        Arc::new(Latch::default())
    }

    /// Opens the latch, releasing every current and future waiter.
    pub fn open(&self) {
        *lock(&self.open) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = lock(&self.open);
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:0` (0 = OS-assigned port).
    pub addr: String,
    /// Root for durable state: `runs/<key>/` checkpoint directories and
    /// the `cache/` memo-cache.
    pub state_dir: PathBuf,
    /// Worker-pool width shared by all requests (`0` = available
    /// parallelism). Thread count never changes result bits.
    pub threads: usize,
    /// Concurrent detection slots.
    pub max_active: usize,
    /// Bounded admission queue beyond the active slots.
    pub max_queued: usize,
    /// Daemon-level telemetry: per-request events, admission counters,
    /// pool shutdown leak reports.
    pub obs: Obs,
    /// Hard cap on the state directory's bytes (`0` = unlimited). When
    /// set, all durability I/O goes through a budgeted [`Vfs`] that
    /// refuses to exceed the cap, and completed state (memo entries,
    /// finished runs' checkpoints) is LRU-evicted to keep headroom for
    /// active runs (see [`crate::storage`]).
    pub state_budget_bytes: u64,
    /// `true` makes checkpoint failures fatal to the request (answered
    /// as `Checkpoint` — or `StorageFull` when the active run cannot
    /// fit the budget). The default `false` degrades: the run still
    /// answers with correct bits, marked [`DetectOutcome::degraded`],
    /// resume unavailable.
    pub strict_durability: bool,
    /// Test seam: when set, every admitted run blocks on this latch
    /// before doing any work.
    #[doc(hidden)]
    pub hold: Option<Arc<Latch>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            state_dir: std::env::temp_dir().join("matelda-serve"),
            threads: 0,
            max_active: 2,
            max_queued: 8,
            obs: Obs::disabled(),
            state_budget_bytes: 0,
            strict_durability: false,
            hold: None,
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    active: u64,
    queued: u64,
    draining: bool,
}

/// The bounded admission gate.
struct Admission {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: u64,
    max_queued: u64,
}

enum Admit {
    Go,
    Busy { active: u64, queued: u64 },
    ShuttingDown,
}

impl Admission {
    fn admit(&self) -> Admit {
        let mut g = lock(&self.state);
        if g.draining {
            return Admit::ShuttingDown;
        }
        if g.active < self.max_active {
            g.active += 1;
            return Admit::Go;
        }
        if g.queued >= self.max_queued {
            return Admit::Busy { active: g.active, queued: g.queued };
        }
        g.queued += 1;
        loop {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            if g.draining {
                g.queued -= 1;
                self.cv.notify_all();
                return Admit::ShuttingDown;
            }
            if g.active < self.max_active {
                g.queued -= 1;
                g.active += 1;
                return Admit::Go;
            }
        }
    }

    fn release(&self) {
        let mut g = lock(&self.state);
        g.active -= 1;
        self.cv.notify_all();
    }

    /// Flags draining and returns how many runs were in flight.
    fn begin_drain(&self) -> u64 {
        let mut g = lock(&self.state);
        g.draining = true;
        self.cv.notify_all();
        g.active
    }

    fn await_drained(&self) {
        let mut g = lock(&self.state);
        while g.active > 0 {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Daemon {
    admission: Admission,
    executor: Executor,
    registry: Registry,
    cache: MemoCache,
    runs_dir: PathBuf,
    storage: StateStore,
    vfs: Vfs,
    strict: bool,
    obs: Obs,
    hold: Option<Arc<Latch>>,
    /// Serializes concurrent requests for the *same* manifest key so the
    /// second one becomes a memo hit instead of a redundant recompute
    /// (and so two runs never share a checkpoint directory).
    key_locks: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    stopping: AtomicBool,
}

/// A running daemon. Dropping the handle does not stop the server; send
/// a [`Request::Shutdown`] (or kill the process — that is what the
/// checkpoints are for) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the accept loop to exit (i.e. for a graceful shutdown).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Binds and starts the daemon; returns once the listener is live.
pub fn serve(opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    let runs_dir = opts.state_dir.join("runs");
    std::fs::create_dir_all(&runs_dir)?;
    // With a budget, pre-charge whatever a restarted daemon already has
    // on disk, so adopted state counts against the cap from second one.
    let vfs = if opts.state_budget_bytes > 0 {
        Vfs::with_budget(opts.state_budget_bytes, dir_bytes(&opts.state_dir).unwrap_or(0))
    } else {
        Vfs::real()
    };
    let cache_dir = opts.state_dir.join("cache");
    let cache = MemoCache::open_with(&cache_dir, vfs.clone())?;
    let storage = StateStore::new(runs_dir.clone(), cache_dir, vfs.clone(), opts.obs.clone());
    // A restarted budgeted daemon may adopt more state than the
    // high-water mark allows; reclaim before the first request.
    storage.enforce();
    // One pool for the daemon's lifetime: every request clones the
    // executor (sharing the pool); shutdown leak reports go to the
    // daemon's obs, bounded by the join deadline.
    let executor = Executor::new(opts.threads)
        .with_pool_obs(&opts.obs)
        .with_join_deadline(Duration::from_secs(2));
    let daemon = Arc::new(Daemon {
        admission: Admission {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_active: opts.max_active.max(1) as u64,
            max_queued: opts.max_queued as u64,
        },
        executor,
        registry: Registry::new(),
        cache,
        runs_dir,
        storage,
        vfs,
        strict: opts.strict_durability,
        obs: opts.obs.clone(),
        hold: opts.hold.clone(),
        key_locks: Mutex::new(HashMap::new()),
        stopping: AtomicBool::new(false),
    });
    let accept = std::thread::Builder::new()
        .name("matelda-serve-accept".into())
        .spawn(move || accept_loop(&listener, &daemon))
        .expect("spawn accept thread");
    Ok(ServerHandle { addr, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, daemon: &Arc<Daemon>) {
    for conn in listener.incoming() {
        if daemon.stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let daemon = Arc::clone(daemon);
        // One thread per connection: connections are few (clients, not
        // browsers) and the expensive resource — detection slots — is
        // bounded by the admission gate, not by connection count.
        let _ = std::thread::Builder::new()
            .name("matelda-serve-conn".into())
            .spawn(move || connection_loop(stream, &daemon));
    }
}

fn connection_loop(mut stream: TcpStream, daemon: &Arc<Daemon>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Oversized { claimed }) => {
                // Protocol error, connection survives: the oversized
                // payload was drained, answer and keep reading.
                daemon.obs.counter_add("serve.protocol_errors", 1);
                let resp = Response::Error {
                    kind: ErrorKind::Protocol,
                    message: FrameError::Oversized { claimed }.to_string(),
                };
                if respond(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => return, // closed, truncated or dead socket
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                daemon.obs.counter_add("serve.protocol_errors", 1);
                let resp = Response::Error {
                    kind: ErrorKind::Protocol,
                    message: format!("bad request payload: {e}"),
                };
                if respond(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Ping => {
                if respond(&mut stream, &Response::Pong).is_err() {
                    return;
                }
            }
            Request::Detect(job) => {
                let resp = handle_detect(daemon, &job);
                if respond(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let drained = daemon.admission.begin_drain();
                daemon.admission.await_drained();
                daemon.stopping.store(true, Ordering::Release);
                let _ = respond(&mut stream, &Response::ShutdownAck { drained });
                // Unblock the accept loop with a no-op connection.
                if let Ok(local) = stream.local_addr() {
                    let _ = TcpStream::connect(local);
                }
                return;
            }
        }
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &encode_response(resp))
}

/// Maps a job's variant string onto the same config mutations the CLI
/// applies.
fn config_for(job: &DetectJob) -> Result<MateldaConfig, String> {
    let mut config = MateldaConfig { seed: job.seed, ..Default::default() };
    match job.variant.as_str() {
        "standard" | "" => {}
        "edf" => config.domain_folding = DomainFolding::ExtremeDomainFolding,
        "rs" => config.domain_folding = DomainFolding::RowSampling(0.1),
        "santos" => config.domain_folding = DomainFolding::SantosLike,
        "sf" => config.syntactic_refinement = true,
        "tpdf" => config.training = TrainingStrategy::PerDomainFold,
        "tucf" => config.training = TrainingStrategy::UnlabeledCellFolds,
        other => return Err(format!("unknown variant {other:?}")),
    }
    if job.deadline_ms > 0 {
        // Degrade through the stage watchdog instead of aborting: a
        // blown deadline quarantines work items, never the process.
        config.stage_timeout = Some(Duration::from_millis(job.deadline_ms));
        config.on_error = FaultPolicy::Skip;
    }
    Ok(config)
}

fn handle_detect(daemon: &Arc<Daemon>, job: &DetectJob) -> Response {
    match daemon.admission.admit() {
        Admit::Go => daemon.obs.counter_add("serve.admitted", 1),
        Admit::Busy { active, queued } => {
            daemon.obs.counter_add("serve.busy", 1);
            return Response::Busy { active, queued };
        }
        Admit::ShuttingDown => return Response::ShuttingDown,
    }
    // From here on the slot must be released on *every* path.
    let resp = run_detect(daemon, job);
    daemon.admission.release();
    resp
}

fn run_detect(daemon: &Arc<Daemon>, job: &DetectJob) -> Response {
    if let Some(latch) = &daemon.hold {
        latch.wait();
    }
    let config = match config_for(job) {
        Ok(c) => c,
        Err(message) => return Response::Error { kind: ErrorKind::BadRequest, message },
    };
    let pair = match daemon.registry.load(job.dirty_dir.as_ref(), job.clean_dir.as_ref()) {
        Ok(p) => p,
        Err(e) => return Response::Error { kind: ErrorKind::Ingest, message: e.to_string() },
    };
    // Per-request obs: this run's spans and stage counters, isolated
    // from every other tenant's.
    let request_obs = Obs::enabled();
    let pipeline =
        Matelda::new(config).with_obs(request_obs.clone()).with_executor(daemon.executor.clone());
    let budget = job.budget as usize;
    let key = pipeline.manifest(&pair.dirty, budget).hash();

    // Identical concurrent requests serialize on the key lock: the
    // first computes, the rest hit the cache it populated.
    let key_lock =
        Arc::clone(lock(&daemon.key_locks).entry(key).or_insert_with(|| Arc::new(Mutex::new(()))));
    let _key_guard = lock(&key_lock);

    if !job.fresh {
        match daemon.cache.load(key) {
            CacheRead::Hit(mut outcome) => {
                daemon.obs.counter_add("serve.cache.hits", 1);
                outcome.cached = true;
                outcome.stages_run = 0;
                outcome.stages_restored = 0;
                note_request(daemon, job, key, &outcome);
                return Response::Result(outcome);
            }
            CacheRead::Corrupt => {
                // Detected, evicted, recomputed below — never served.
                daemon.obs.counter_add("serve.cache.corrupt", 1);
            }
            CacheRead::Miss => daemon.obs.counter_add("serve.cache.misses", 1),
        }
    }

    // This key's state is now load-bearing: exempt it from eviction,
    // then reclaim completed state so the active run finds headroom.
    let _active = ActiveKey::new(&daemon.storage, key);
    daemon.storage.enforce();

    let durability = Durability {
        checkpoint_dir: Some(daemon.runs_dir.join(format!("{key:016x}"))),
        resume: true,
        // Strict tenants trade availability for a resume guarantee;
        // the default trades the guarantee for always answering.
        policy: if daemon.strict { DurabilityPolicy::Fail } else { DurabilityPolicy::Degrade },
        vfs: daemon.vfs.clone(),
    };
    let mut oracle = matelda_table::Oracle::new(&pair.truth);
    // Request-level quarantine: a panicking run (FaultPolicy::Fail, an
    // engine bug, an injected faultpoint) poisons only this response.
    // The pool's workers catch item panics themselves and outlive this.
    let run = catch_unwind(AssertUnwindSafe(|| {
        pipeline.detect_durable(&pair.dirty, &mut oracle, budget, &durability)
    }));
    let result = match run {
        Ok(Ok(result)) => result,
        Ok(Err(ckpt_err)) => {
            daemon.obs.counter_add("serve.checkpoint_errors", 1);
            // Under strict durability, a budget refusal means the
            // *active* run cannot fit (completed state was already
            // evictable) — that is the one case StorageFull names.
            let kind = match &ckpt_err {
                CkptError::Io { source, .. } if source.kind() == io::ErrorKind::StorageFull => {
                    daemon.obs.counter_add("serve.storage_full", 1);
                    ErrorKind::StorageFull
                }
                _ => ErrorKind::Checkpoint,
            };
            return Response::Error { kind, message: ckpt_err.to_string() };
        }
        Err(payload) => {
            daemon.obs.counter_add("serve.faulted", 1);
            return Response::Error {
                kind: ErrorKind::Faulted,
                message: format!("detection run faulted: {}", panic_message(payload.as_ref())),
            };
        }
    };
    if result.durability_degraded {
        daemon.obs.counter_add("serve.degraded", 1);
    }
    let outcome = DetectOutcome {
        digest: result.digest(),
        labels_used: result.labels_used as u64,
        n_domain_folds: result.n_domain_folds as u64,
        n_quality_folds: result.n_quality_folds as u64,
        flagged: result.predicted.count() as u64,
        quarantined_tables: result.quarantine.tables.len() as u64,
        // Only stages that actually executed emit `stage.end`; restored
        // ones emit `ckpt.restore` + the restored-stages counter.
        stages_run: request_obs.events_named("stage.end").len() as u64,
        stages_restored: request_obs.counter("ckpt.restored_stages").unwrap_or(0),
        cached: false,
        degraded: result.durability_degraded,
    };
    // Best-effort: a failed store only costs a recompute later, never
    // this request — but it is counted, not swallowed silently.
    if daemon.cache.store(key, &outcome).is_err() {
        daemon.obs.counter_add("serve.cache.store_failed", 1);
    }
    // Reclaim again with this run's state now evictable-sized: keeps
    // the steady-state footprint at the high-water mark between
    // requests. (The guard drops after, making this key evictable for
    // the *next* pass — its fresh mtime makes it the LRU's last pick.)
    daemon.storage.enforce();
    note_request(daemon, job, key, &outcome);
    Response::Result(outcome)
}

/// One `serve.request` event per completed request in the daemon's own
/// telemetry, keyed for cross-tenant debugging.
fn note_request(daemon: &Daemon, job: &DetectJob, key: u64, outcome: &DetectOutcome) {
    daemon.obs.counter_add("serve.requests", 1);
    if daemon.obs.is_enabled() {
        let key_hex = format!("{key:016x}");
        let digest_hex = format!("{:016x}", outcome.digest);
        daemon.obs.event(
            "serve.request",
            &[
                ("key", Val::S(&key_hex)),
                ("dirty_dir", Val::S(&job.dirty_dir)),
                ("digest", Val::S(&digest_hex)),
                ("cached", Val::U(u64::from(outcome.cached))),
                ("stages_run", Val::U(outcome.stages_run)),
                ("stages_restored", Val::U(outcome.stages_restored)),
                ("labels_used", Val::U(outcome.labels_used)),
            ],
        );
    }
}
