//! The lake registry: parsed lakes cached across requests, invalidated
//! by file metadata.
//!
//! A daemon serving the same lake to many clients should not re-parse
//! its CSV files per request — but it must also never serve a stale
//! parse. Each cached entry records a freshness stamp (path, length,
//! modification time in nanoseconds) for every CSV file it was built
//! from, plus the *directory listing* itself; any difference on lookup
//! evicts and reloads. The memo-cache layer above is keyed by content
//! fingerprint, so even a stamp collision (same length, same mtime,
//! different bytes — not producible by normal filesystems) could only
//! cost a wrong cache key, and the checkpoint manifest validation
//! would still refuse to mix artifacts.

use matelda_table::{
    csv_paths_sorted, diff_lakes, read_lake_from_dir_with, CellMask, Lake, ReadOptions,
};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

/// One file's freshness stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Stamp {
    path: PathBuf,
    len: u64,
    mtime: SystemTime,
}

fn stamps(dir: &Path) -> io::Result<Vec<Stamp>> {
    let mut out = Vec::new();
    for path in csv_paths_sorted(dir)? {
        let meta = std::fs::metadata(&path)?;
        out.push(Stamp {
            path,
            len: meta.len(),
            mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
        });
    }
    Ok(out)
}

/// A dirty/clean lake pair plus the derived labeling truth.
#[derive(Debug, Clone)]
pub struct LakePair {
    /// The dirty lake under detection.
    pub dirty: Lake,
    /// Ground truth (cells where dirty and clean differ) — the oracle's
    /// answer sheet.
    pub truth: CellMask,
}

struct Entry {
    dirty_stamps: Vec<Stamp>,
    clean_stamps: Vec<Stamp>,
    pair: LakePair,
}

/// A concurrent map from `(dirty_dir, clean_dir)` to parsed lakes.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<HashMap<(PathBuf, PathBuf), Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the parsed pair for two directories, reloading if any
    /// underlying CSV file changed (or appeared, or vanished) since the
    /// cached parse.
    pub fn load(&self, dirty_dir: &Path, clean_dir: &Path) -> io::Result<LakePair> {
        let key = (dirty_dir.to_path_buf(), clean_dir.to_path_buf());
        let dirty_stamps = stamps(dirty_dir)?;
        let clean_stamps = stamps(clean_dir)?;
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = entries.get(&key) {
            if e.dirty_stamps == dirty_stamps && e.clean_stamps == clean_stamps {
                return Ok(e.pair.clone());
            }
        }
        let opts = ReadOptions::strict();
        let (dirty, _) = read_lake_from_dir_with(dirty_dir, &opts)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let (clean, _) = read_lake_from_dir_with(clean_dir, &opts)
            .map_err(|e| io::Error::other(e.to_string()))?;
        if dirty.n_tables() != clean.n_tables() {
            return Err(io::Error::other("dirty and clean lakes have different table counts"));
        }
        let pair = LakePair { dirty: dirty.clone(), truth: diff_lakes(&dirty, &clean) };
        entries.insert(key, Entry { dirty_stamps, clean_stamps, pair: pair.clone() });
        Ok(pair)
    }
}
