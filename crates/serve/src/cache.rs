//! The fingerprint-keyed memo-cache: checksum-validated answers for
//! previously completed runs.
//!
//! The key is [`matelda_core::Matelda::manifest`]'s hash — an FNV-1a
//! digest over exactly the inputs that shape output bits (config hash,
//! lake fingerprint, seed, budget; thread count excluded). Equal key ⇒
//! bit-equal result, so a hit may answer without running any stage.
//!
//! Entries reuse the checkpoint layer's envelope
//! ([`matelda_ckpt::encode_envelope`]): magic, format version, the key
//! stamped as the manifest hash, a fixed stage name and an FNV-1a
//! payload checksum. A read validates *all* of it; any failure —
//! truncated file, flipped byte, an entry copied from a different run —
//! deletes the entry and reports [`CacheRead::Corrupt`], and the caller
//! recomputes. A corrupt cache can cost time; it can never produce a
//! wrong answer.

use crate::proto::{decode_outcome, encode_outcome, DetectOutcome};
use matelda_ckpt::{decode_envelope, encode_envelope, Reader, Vfs, Writer};
use std::io;
use std::path::{Path, PathBuf};

/// The envelope "stage" name for memo entries — distinct from every
/// pipeline stage, so a stray stage snapshot can never validate as a
/// cache entry (and vice versa).
const MEMO_STAGE: &str = "memo";

/// What a cache lookup found.
#[derive(Debug, PartialEq)]
pub enum CacheRead {
    /// No entry for this key.
    Miss,
    /// A fully validated entry.
    Hit(DetectOutcome),
    /// An entry existed but failed validation; it has been removed and
    /// the caller must recompute. Never served.
    Corrupt,
}

/// An on-disk memo-cache rooted at one directory, one file per key.
#[derive(Debug, Clone)]
pub struct MemoCache {
    dir: PathBuf,
    vfs: Vfs,
}

impl MemoCache {
    /// Opens (creating if needed) the cache directory with plain
    /// filesystem I/O.
    pub fn open(dir: &Path) -> io::Result<MemoCache> {
        Self::open_with(dir, Vfs::real())
    }

    /// Opens (creating if needed) the cache directory, routing every
    /// byte through `vfs`. Stale `*.tmp` litter from interrupted
    /// commits is scavenged here — a crashed store never pins disk.
    pub fn open_with(dir: &Path, vfs: Vfs) -> io::Result<MemoCache> {
        vfs.create_dir_all(dir)?;
        for path in vfs.read_dir_paths(dir)? {
            if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
                vfs.remove_file(&path)?;
            }
        }
        Ok(MemoCache { dir: dir.to_path_buf(), vfs })
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a key (exposed for corruption tests).
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.res"))
    }

    /// Looks a key up, validating magic, version, key stamp, stage name
    /// and payload checksum before trusting a byte of the payload.
    pub fn load(&self, key: u64) -> CacheRead {
        let path = self.entry_path(key);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheRead::Miss,
            Err(_) => return self.evict(&path),
        };
        let (stamped, stage, payload) = match decode_envelope(&bytes) {
            Ok(parts) => parts,
            Err(_) => return self.evict(&path),
        };
        if stamped != key || stage != MEMO_STAGE {
            return self.evict(&path);
        }
        let mut r = Reader::new(&payload);
        let outcome = match decode_outcome(&mut r).and_then(|o| r.finish().map(|()| o)) {
            Ok(o) => o,
            Err(_) => return self.evict(&path),
        };
        CacheRead::Hit(outcome)
    }

    /// Stores an entry with the full tmp + fsync + rename commit, so a
    /// crash — or power cut — mid-write leaves either the old entry or
    /// none, never a torn one under the final name. Best-effort at the
    /// call site: a failed store only costs a future recompute, never
    /// the request.
    pub fn store(&self, key: u64, outcome: &DetectOutcome) -> io::Result<()> {
        let mut w = Writer::new();
        encode_outcome(&mut w, outcome);
        let bytes = encode_envelope(key, MEMO_STAGE, w.as_bytes());
        self.vfs.write_atomic(&self.entry_path(key), &bytes).map(|_| ())
    }

    /// Removes one entry by key (the eviction layer's hook). Missing
    /// entries are fine — eviction races lookups by design.
    pub fn remove(&self, key: u64) -> io::Result<()> {
        match self.vfs.remove_file(&self.entry_path(key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn evict(&self, path: &Path) -> CacheRead {
        let _ = self.vfs.remove_file(path);
        CacheRead::Corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> DetectOutcome {
        DetectOutcome {
            digest: 0xDEAD_BEEF,
            labels_used: 20,
            n_domain_folds: 3,
            n_quality_folds: 9,
            flagged: 155,
            quarantined_tables: 0,
            stages_run: 6,
            stages_restored: 0,
            cached: false,
            degraded: false,
        }
    }

    fn temp_cache(tag: &str) -> MemoCache {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("matelda-memo-{tag}-{}-{n}", std::process::id()));
        MemoCache::open(&dir).unwrap()
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("roundtrip");
        assert_eq!(cache.load(7), CacheRead::Miss);
        cache.store(7, &outcome()).unwrap();
        assert_eq!(cache.load(7), CacheRead::Hit(outcome()));
        // A different key never sees the entry.
        assert_eq!(cache.load(8), CacheRead::Miss);
        let _ = std::fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn any_corruption_is_detected_and_evicted() {
        for (i, damage) in [0usize, 1, 2].into_iter().enumerate() {
            let cache = temp_cache("corrupt");
            cache.store(5, &outcome()).unwrap();
            let path = cache.entry_path(5);
            let mut bytes = std::fs::read(&path).unwrap();
            match damage {
                0 => bytes.truncate(bytes.len() / 2),
                1 => {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x20;
                }
                _ => bytes.clear(),
            }
            std::fs::write(&path, &bytes).unwrap();
            assert_eq!(cache.load(5), CacheRead::Corrupt, "damage {i}");
            assert!(!path.exists(), "corrupt entry must be evicted (damage {i})");
            // The corrupt read degraded to a miss for the next caller.
            assert_eq!(cache.load(5), CacheRead::Miss, "damage {i}");
            let _ = std::fs::remove_dir_all(cache.dir);
        }
    }

    #[test]
    fn open_scavenges_stale_tmp_litter() {
        let cache = temp_cache("scavenge");
        cache.store(3, &outcome()).unwrap();
        let litter = cache.dir().join("deadbeef00000000.tmp");
        std::fs::write(&litter, b"half a crashed commit").unwrap();
        let reopened = MemoCache::open(cache.dir()).unwrap();
        assert!(!litter.exists(), "stale tmp must be scavenged on open");
        assert_eq!(reopened.load(3), CacheRead::Hit(outcome()), "real entries survive");
        let _ = std::fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn store_commits_atomically_through_the_vfs() {
        use matelda_ckpt::{FaultKind, InjectAt, Vfs};
        let cache = temp_cache("atomic");
        cache.store(9, &outcome()).unwrap();
        // A faulted re-store (any site of the commit) must leave the old
        // entry fully intact — write_atomic never tears the final name.
        // Opening consumes ops 0-1 (create_dir, scavenge read_dir); the
        // commit is ops 2-6 (open, write, sync, rename, dir-sync).
        for at in 2..6 {
            let inj = InjectAt::new(at, FaultKind::Errno(std::io::ErrorKind::StorageFull));
            let faulty =
                MemoCache::open_with(cache.dir(), Vfs::with_injector(inj.clone())).unwrap();
            let err = faulty.store(9, &outcome()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::StorageFull, "site {at}");
            assert_eq!(inj.fired(), 1, "site {at}");
            assert_eq!(cache.load(9), CacheRead::Hit(outcome()), "site {at}");
        }
        let _ = std::fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn remove_frees_the_entry_and_tolerates_absence() {
        let cache = temp_cache("remove");
        cache.store(4, &outcome()).unwrap();
        cache.remove(4).unwrap();
        assert_eq!(cache.load(4), CacheRead::Miss);
        cache.remove(4).unwrap(); // absent: still Ok
        let _ = std::fs::remove_dir_all(cache.dir);
    }

    #[test]
    fn an_entry_stamped_for_another_key_never_validates() {
        let cache = temp_cache("foreign");
        cache.store(1, &outcome()).unwrap();
        std::fs::copy(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert_eq!(cache.load(2), CacheRead::Corrupt, "foreign entry must not be served");
        assert_eq!(cache.load(1), CacheRead::Hit(outcome()));
        let _ = std::fs::remove_dir_all(cache.dir);
    }
}
