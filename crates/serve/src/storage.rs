//! Disk-budget enforcement for the daemon's state directory.
//!
//! With `--state-budget-bytes` set, every durability byte the daemon
//! writes — run checkpoints, memo-cache entries — goes through one
//! budgeted [`Vfs`] that refuses to exceed the limit, and this module
//! keeps the budget *livable*: completed state (memo entries and the
//! checkpoint directories of runs that are not currently executing) is
//! evicted oldest-first whenever usage crosses the high-water mark, so
//! active runs always find room. The ordering guarantee is the simple
//! one that matters operationally:
//!
//! * the state directory never exceeds the budget, even transiently
//!   (the [`Vfs`] enforces that at write time, not this module);
//! * completed state is reclaimed before any active run is refused;
//! * a run that *still* cannot fit degrades (default policy) or is
//!   answered with an explicit `StorageFull` (strict durability) —
//!   never a panic, never a torn result.
//!
//! Telemetry: the `serve.state.bytes` gauge tracks charged bytes after
//! every enforcement pass, `serve.state.evictions` counts entries
//! reclaimed over the daemon's lifetime (counter and gauge).

use matelda_ckpt::Vfs;
use matelda_obs::Obs;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::SystemTime;

/// Keep usage at or below this fraction of the budget between requests:
/// evicting down to half leaves the other half as headroom for whatever
/// the next active run needs to checkpoint.
const HIGH_WATER_NUM: u64 = 1;
const HIGH_WATER_DEN: u64 = 2;

/// The daemon's view of its state directory: who is active, what can be
/// evicted, how many bytes are charged.
#[derive(Debug)]
pub struct StateStore {
    runs_dir: PathBuf,
    cache_dir: PathBuf,
    vfs: Vfs,
    obs: Obs,
    active: Mutex<HashSet<u64>>,
    evictions: AtomicU64,
}

/// One evictable entry: a memo-cache file or a completed run directory.
struct Candidate {
    mtime: SystemTime,
    path: PathBuf,
    key: Option<u64>,
    is_dir: bool,
}

impl StateStore {
    /// A store over `runs/` and `cache/` sharing the daemon's storage
    /// handle (whose budget, if any, this store keeps under the
    /// high-water mark).
    pub fn new(runs_dir: PathBuf, cache_dir: PathBuf, vfs: Vfs, obs: Obs) -> StateStore {
        StateStore {
            runs_dir,
            cache_dir,
            vfs,
            obs,
            active: Mutex::new(HashSet::new()),
            evictions: AtomicU64::new(0),
        }
    }

    /// Marks `key` active: its run directory and memo entry are exempt
    /// from eviction until [`StateStore::end`].
    pub fn begin(&self, key: u64) {
        self.lock_active().insert(key);
    }

    /// Ends `key`'s active window (its state becomes evictable again).
    pub fn end(&self, key: u64) {
        self.lock_active().remove(&key);
    }

    /// Bytes currently charged against the budget (`None` unbudgeted).
    pub fn bytes(&self) -> Option<u64> {
        self.vfs.budget_used()
    }

    /// Entries evicted over the daemon's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn lock_active(&self) -> std::sync::MutexGuard<'_, HashSet<u64>> {
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Key encoded in a state entry's file stem (`<key:016x>.res` /
    /// `runs/<key:016x>`), if it parses.
    fn entry_key(path: &std::path::Path) -> Option<u64> {
        let stem = path.file_stem()?.to_str()?;
        u64::from_str_radix(stem, 16).ok()
    }

    fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        let mut push = |path: PathBuf, is_dir: bool| {
            let Ok(meta) = std::fs::metadata(&path) else { return };
            out.push(Candidate {
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                key: Self::entry_key(&path),
                path,
                is_dir,
            });
        };
        if let Ok(entries) = self.vfs.read_dir_paths(&self.cache_dir) {
            for path in entries {
                if path.extension().is_some_and(|e| e == "res") {
                    push(path, false);
                }
            }
        }
        if let Ok(entries) = self.vfs.read_dir_paths(&self.runs_dir) {
            for path in entries {
                if path.is_dir() {
                    push(path, true);
                }
            }
        }
        out
    }

    /// Evicts completed state, oldest first, until usage is at or below
    /// the high-water mark. No-op without a budget. Active runs' state
    /// is never touched; ties and ordering are stable (mtime, then
    /// path) so concurrent enforcement passes converge.
    pub fn enforce(&self) {
        let Some(limit) = self.vfs.budget_limit() else { return };
        let high_water = limit / HIGH_WATER_DEN * HIGH_WATER_NUM;
        let mut used = self.vfs.budget_used().unwrap_or(0);
        if used > high_water {
            let mut candidates = self.candidates();
            candidates.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
            let active = self.lock_active().clone();
            for c in candidates {
                if used <= high_water {
                    break;
                }
                if c.key.is_some_and(|k| active.contains(&k)) {
                    continue;
                }
                let removed = if c.is_dir {
                    self.vfs.remove_dir_all(&c.path)
                } else {
                    self.vfs.remove_file(&c.path)
                };
                if removed.is_ok() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.obs.counter_add("serve.state.evictions", 1);
                }
                used = self.vfs.budget_used().unwrap_or(0);
            }
        }
        self.obs.gauge_set("serve.state.bytes", used as f64);
        self.obs.gauge_set("serve.state.evictions", self.evictions() as f64);
    }
}

/// RAII for one key's active window (eviction exemption).
pub struct ActiveKey<'a> {
    store: &'a StateStore,
    key: u64,
}

impl<'a> ActiveKey<'a> {
    /// Marks `key` active until the guard drops.
    pub fn new(store: &'a StateStore, key: u64) -> ActiveKey<'a> {
        store.begin(key);
        ActiveKey { store, key }
    }
}

impl Drop for ActiveKey<'_> {
    fn drop(&mut self) {
        self.store.end(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    fn temp_state(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("matelda-state-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(dir.join("runs")).unwrap();
        fs::create_dir_all(dir.join("cache")).unwrap();
        dir
    }

    fn store_with_budget(dir: &Path, limit: u64) -> StateStore {
        let used = matelda_ckpt::dir_bytes(dir).unwrap_or(0);
        StateStore::new(
            dir.join("runs"),
            dir.join("cache"),
            Vfs::with_budget(limit, used),
            Obs::enabled(),
        )
    }

    fn plant_entry(dir: &Path, key: u64, bytes: usize, age_rank: u64) {
        let path = dir.join("cache").join(format!("{key:016x}.res"));
        fs::write(&path, vec![0u8; bytes]).unwrap();
        // mtime ordering via explicit timestamps is not portable without
        // utime; rank by writing in order and sleeping briefly instead.
        let _ = age_rank;
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    fn plant_run(dir: &Path, key: u64, bytes: usize) {
        let run = dir.join("runs").join(format!("{key:016x}"));
        fs::create_dir_all(&run).unwrap();
        fs::write(run.join("embed.ckpt"), vec![0u8; bytes]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    #[test]
    fn evicts_oldest_first_down_to_high_water() {
        let dir = temp_state("lru");
        plant_entry(&dir, 1, 400, 0); // oldest
        plant_entry(&dir, 2, 400, 1);
        plant_entry(&dir, 3, 400, 2); // newest
        let store = store_with_budget(&dir, 1200); // high water = 600
        assert_eq!(store.bytes(), Some(1200));
        store.enforce();
        // Two oldest go; the newest survives at 400 ≤ 600.
        assert_eq!(store.bytes(), Some(400));
        assert!(!dir.join("cache/0000000000000001.res").exists());
        assert!(!dir.join("cache/0000000000000002.res").exists());
        assert!(dir.join("cache/0000000000000003.res").exists());
        assert_eq!(store.evictions(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_keys_are_never_evicted() {
        let dir = temp_state("active");
        plant_entry(&dir, 7, 800, 0); // oldest but active
        plant_run(&dir, 7, 100);
        plant_entry(&dir, 8, 600, 1);
        let store = store_with_budget(&dir, 1400); // high water = 700
        let guard = ActiveKey::new(&store, 7);
        store.enforce();
        assert!(dir.join("cache/0000000000000007.res").exists(), "active memo survives");
        assert!(dir.join("runs/0000000000000007").exists(), "active run dir survives");
        assert!(!dir.join("cache/0000000000000008.res").exists(), "inactive newest evicted");
        drop(guard);
        store.enforce();
        assert!(!dir.join("cache/0000000000000007.res").exists(), "evictable once inactive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_directories_are_evicted_whole() {
        let dir = temp_state("rundirs");
        plant_run(&dir, 11, 500);
        plant_entry(&dir, 12, 100, 1);
        let store = store_with_budget(&dir, 800); // high water = 400
        store.enforce();
        assert!(!dir.join("runs/000000000000000b").exists(), "whole run dir reclaimed");
        assert!(store.bytes().unwrap() <= 400);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unbudgeted_store_never_evicts() {
        let dir = temp_state("unbudgeted");
        plant_entry(&dir, 1, 10_000, 0);
        let store =
            StateStore::new(dir.join("runs"), dir.join("cache"), Vfs::real(), Obs::disabled());
        store.enforce();
        assert!(dir.join("cache/0000000000000001.res").exists());
        assert_eq!(store.bytes(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
