//! Process-level crash tolerance (ISSUE 7 headline proof): a client
//! retrying through a daemon crash gets a result digest-equal to an
//! uninterrupted run, at every server thread count.
//!
//! These tests drive the *compiled* `matelda-serve` and
//! `matelda-client` binaries: the daemon is aborted mid-detection (via
//! the deterministic `MATELDA_CKPT_CRASH` hook, and via a literal
//! SIGKILL), restarted on the same state directory and port, and the
//! retrying client must come back with the baseline digest — resumed
//! from the dead run's checkpointed stage frontier, not recomputed from
//! scratch.

use matelda_chaos::CRASH_ENV;
use matelda_core::{Matelda, MateldaConfig};
use matelda_lakegen::QuintetLake;
use matelda_table::{diff_lakes, read_lake_from_dir_with, write_lake_to_dir, Oracle, ReadOptions};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "matelda_serve_chaos_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_pair(tag: &str, gen_seed: u64, rows: usize) -> (PathBuf, PathBuf, PathBuf) {
    let root = tmp_dir(tag);
    let lake = QuintetLake { rows_per_table: rows, error_rate: 0.1 }.generate(gen_seed);
    let dirty = root.join("dirty");
    let clean = root.join("clean");
    write_lake_to_dir(&lake.dirty, &dirty).expect("write dirty lake");
    write_lake_to_dir(&lake.clean, &clean).expect("write clean lake");
    (root, dirty, clean)
}

/// The uninterrupted-run digest the retried client must reproduce,
/// formatted like the client's `digest:` line.
fn baseline_digest(dirty: &Path, clean: &Path) -> String {
    let (dirty_lake, _) = read_lake_from_dir_with(dirty, &ReadOptions::strict()).expect("dirty");
    let (clean_lake, _) = read_lake_from_dir_with(clean, &ReadOptions::strict()).expect("clean");
    let truth = diff_lakes(&dirty_lake, &clean_lake);
    let mut oracle = Oracle::new(&truth);
    let result = Matelda::new(MateldaConfig::default()).detect(&dirty_lake, &mut oracle, 20);
    format!("{:016x}", result.digest())
}

/// A spawned daemon process, killed on drop so a failing test never
/// leaks a listener.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    fn try_spawn(state: &Path, addr: &str, threads: usize, envs: &[(&str, &str)]) -> Option<Self> {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_matelda-serve"));
        cmd.args(["--state-dir", state.to_str().unwrap(), "--addr", addr])
            .args(["--threads", &threads.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn matelda-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(rest) = line.strip_prefix("listening on ") {
                        break rest.to_string();
                    }
                }
                _ => {
                    // Bind failure (e.g. transient EADDRINUSE on a
                    // restart): reap and let the caller retry.
                    let _ = child.wait();
                    return None;
                }
            }
        };
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Some(DaemonProc { child, addr })
    }

    fn spawn(state: &Path, addr: &str, threads: usize, envs: &[(&str, &str)]) -> Self {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(daemon) = Self::try_spawn(state, addr, threads, envs) {
                return daemon;
            }
            assert!(Instant::now() < deadline, "daemon never bound {addr}");
            std::thread::sleep(Duration::from_millis(250));
        }
    }

    /// Waits for the process to exit on its own (a planted crash).
    fn wait(&mut self) {
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn client() -> Command {
    Command::new(env!("CARGO_BIN_EXE_matelda-client"))
}

fn client_detect(addr: &str, dirty: &Path, clean: &Path, retries: u32, backoff_ms: u64) -> Output {
    client()
        .args(["detect", addr, dirty.to_str().unwrap(), "--clean", clean.to_str().unwrap()])
        .args(["--retries", &retries.to_string(), "--backoff-ms", &backoff_ms.to_string()])
        .output()
        .expect("run matelda-client detect")
}

fn digest_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "client failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest: "))
        .unwrap_or_else(|| panic!("no digest line in: {stdout}"))
        .to_string()
}

fn shutdown(addr: &str) {
    let out = client().args(["shutdown", addr]).output().expect("run matelda-client shutdown");
    assert!(out.status.success(), "shutdown failed: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn client_retries_through_a_planted_crash_to_the_baseline_digest() {
    let (root, dirty, clean) = write_pair("planted", 31, 25);
    let baseline = baseline_digest(&dirty, &clean);

    for threads in [1usize, 2, 4] {
        let state = tmp_dir(&format!("planted_state_{threads}"));
        // The daemon aborts itself right after the quality_folds
        // snapshot commits — a deterministic mid-detection kill.
        let mut doomed = DaemonProc::spawn(
            &state,
            "127.0.0.1:0",
            threads,
            &[(CRASH_ENV, "after:quality_folds")],
        );
        let addr = doomed.addr.clone();

        let client_thread = {
            let (addr, dirty, clean) = (addr.clone(), dirty.clone(), clean.clone());
            std::thread::spawn(move || client_detect(&addr, &dirty, &clean, 12, 100))
        };
        // The planted abort fires during the client's first attempt.
        doomed.wait();
        // Restart on the same port and state directory, crash hook off.
        let revived = DaemonProc::spawn(&state, &addr, threads, &[]);

        let out = client_thread.join().expect("client thread");
        assert_eq!(
            digest_of(&out),
            baseline,
            "retried-through-crash digest must match at {threads} thread(s)"
        );
        // The retried run resumed the dead run's frontier: the four
        // stages committed before the abort were restored, not re-run.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("4 restored"),
            "expected a 4-stage resume at {threads} thread(s), got: {stdout}"
        );

        shutdown(&revived.addr);
        let _ = std::fs::remove_dir_all(state);
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn client_retries_through_a_sigkill_to_the_baseline_digest() {
    // A larger lake widens the window between the first checkpoint
    // commit and the end of the run.
    let (root, dirty, clean) = write_pair("sigkill", 32, 60);
    let baseline = baseline_digest(&dirty, &clean);
    let state = tmp_dir("sigkill_state");

    let mut doomed = DaemonProc::spawn(&state, "127.0.0.1:0", 2, &[]);
    let addr = doomed.addr.clone();
    let client_thread = {
        let (addr, dirty, clean) = (addr.clone(), dirty.clone(), clean.clone());
        std::thread::spawn(move || client_detect(&addr, &dirty, &clean, 12, 100))
    };

    // SIGKILL the daemon as soon as any stage snapshot has committed —
    // no cooperation from the victim, exactly like the OOM killer.
    let runs = state.join("runs");
    let deadline = Instant::now() + Duration::from_secs(30);
    'hunt: while Instant::now() < deadline {
        for run_dir in std::fs::read_dir(&runs).into_iter().flatten().flatten() {
            for f in std::fs::read_dir(run_dir.path()).into_iter().flatten().flatten() {
                let name = f.file_name();
                let name = name.to_string_lossy().into_owned();
                if name.ends_with(".ckpt") && name != "manifest.ckpt" {
                    break 'hunt;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    doomed.child.kill().expect("SIGKILL the daemon");
    doomed.wait();

    let revived = DaemonProc::spawn(&state, &addr, 2, &[]);
    let out = client_thread.join().expect("client thread");
    assert_eq!(digest_of(&out), baseline, "retried-through-SIGKILL digest must match");

    shutdown(&revived.addr);
    let _ = std::fs::remove_dir_all(state);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn an_env_armed_fault_quarantines_requests_but_not_the_daemon() {
    let (root, dirty, clean) = write_pair("armed", 33, 25);
    let state = tmp_dir("armed_state");
    // Every detection in this daemon trips the finalize faultpoint.
    let daemon =
        DaemonProc::spawn(&state, "127.0.0.1:0", 2, &[("MATELDA_FAULTPOINTS", "finalize:0")]);

    let out = client_detect(&daemon.addr, &dirty, &clean, 1, 10);
    assert_eq!(out.status.code(), Some(1), "a faulted run must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Faulted"), "got: {stderr}");

    // The fault was request-scoped: the daemon still answers and still
    // shuts down gracefully.
    let ping = client().args(["ping", &daemon.addr]).output().expect("ping");
    assert!(ping.status.success(), "daemon must survive a faulted request");
    shutdown(&daemon.addr);

    let _ = std::fs::remove_dir_all(state);
    let _ = std::fs::remove_dir_all(root);
}
