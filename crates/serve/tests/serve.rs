//! In-process daemon integration suite (ISSUE 7 tentpole): every clause
//! of the service robustness contract, exercised against a real
//! listening daemon with real client connections.
//!
//! All tests share one process, and faultpoint arming is process-global,
//! so every test takes the file-local [`serial`] lock first — detection
//! runs never observe another test's injected faults.

use matelda_chaos::{corrupt_file, Corruption};
use matelda_core::{DomainFolding, Matelda, MateldaConfig};
use matelda_exec::faultpoint;
use matelda_lakegen::QuintetLake;
use matelda_obs::Obs;
use matelda_serve::{
    request, serve, DetectJob, DetectOutcome, ErrorKind, Latch, Request, Response, ServeOptions,
    ServerHandle,
};
use matelda_table::{diff_lakes, read_lake_from_dir_with, write_lake_to_dir, Oracle, ReadOptions};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

const BUDGET: u64 = 20;

/// Serializes the tests in this binary: faultpoint plans are
/// process-global, so a detection running concurrently with another
/// test's armed fault would quarantine for the wrong reason.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matelda_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes a dirty/clean lake pair under a fresh temp root.
fn write_pair(tag: &str, gen_seed: u64) -> (PathBuf, PathBuf, PathBuf) {
    let root = tmp_dir(tag);
    let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(gen_seed);
    let dirty = root.join("dirty");
    let clean = root.join("clean");
    write_lake_to_dir(&lake.dirty, &dirty).expect("write dirty lake");
    write_lake_to_dir(&lake.clean, &clean).expect("write clean lake");
    (root, dirty, clean)
}

/// What an uninterrupted, daemon-free run of the same job produces —
/// the baseline every daemon answer must be digest-equal to.
fn direct_digest(dirty: &Path, clean: &Path, config: MateldaConfig, budget: usize) -> u64 {
    let (dirty_lake, _) = read_lake_from_dir_with(dirty, &ReadOptions::strict()).expect("dirty");
    let (clean_lake, _) = read_lake_from_dir_with(clean, &ReadOptions::strict()).expect("clean");
    let truth = diff_lakes(&dirty_lake, &clean_lake);
    let mut oracle = Oracle::new(&truth);
    Matelda::new(config).detect(&dirty_lake, &mut oracle, budget).digest()
}

fn start(state_tag: &str, opts: ServeOptions) -> (ServerHandle, SocketAddr, PathBuf) {
    let state_dir = tmp_dir(state_tag);
    let opts = ServeOptions { state_dir: state_dir.clone(), ..opts };
    let handle = serve(opts).expect("daemon must bind");
    let addr = handle.addr();
    (handle, addr, state_dir)
}

fn job(dirty: &Path, clean: &Path, seed: u64) -> DetectJob {
    DetectJob {
        dirty_dir: dirty.to_str().unwrap().to_string(),
        clean_dir: clean.to_str().unwrap().to_string(),
        budget: BUDGET,
        seed,
        variant: "standard".to_string(),
        deadline_ms: 0,
        fresh: false,
    }
}

fn detect_ok(addr: SocketAddr, job: &DetectJob) -> DetectOutcome {
    match request(addr, &Request::Detect(job.clone())).expect("request must succeed") {
        Response::Result(outcome) => outcome,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn stop(addr: SocketAddr, handle: ServerHandle) {
    match request(addr, &Request::Shutdown) {
        Ok(Response::ShutdownAck { .. }) => {}
        other => panic!("expected ShutdownAck, got {other:?}"),
    }
    handle.join();
}

/// Polls a daemon counter until it reaches `want` (bounded wait — the
/// deterministic alternative to sleeping and hoping).
fn await_counter(obs: &Obs, name: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while obs.counter(name).unwrap_or(0) < want {
        assert!(Instant::now() < deadline, "counter {name} never reached {want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn daemon_answer_is_digest_equal_to_a_direct_run() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("direct", 11);
    let baseline =
        direct_digest(&dirty, &clean, MateldaConfig { seed: 5, ..Default::default() }, 20);

    let (handle, addr, state) =
        start("direct_state", ServeOptions { threads: 2, ..Default::default() });
    let outcome = detect_ok(addr, &job(&dirty, &clean, 5));
    assert_eq!(outcome.digest, baseline, "daemon must reproduce the direct run bit-for-bit");
    assert!(!outcome.cached);
    assert!(outcome.stages_run > 0, "a first run must actually execute stages");
    assert_eq!(outcome.stages_restored, 0);

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn memo_hit_answers_without_running_any_stage() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("memo", 12);
    let obs = Obs::enabled();
    let (handle, addr, state) =
        start("memo_state", ServeOptions { threads: 1, obs: obs.clone(), ..Default::default() });
    let j = job(&dirty, &clean, 7);

    let first = detect_ok(addr, &j);
    assert!(!first.cached);
    assert!(first.stages_run > 0);
    assert_eq!(obs.counter("serve.cache.misses"), Some(1));

    // Same manifest key: answered from the memo-cache, zero stages run
    // (the per-request obs saw no `stage.end` events at all).
    let second = detect_ok(addr, &j);
    assert!(second.cached, "an unchanged lake+config must be a cache hit");
    assert_eq!(second.stages_run, 0, "a memo hit must not run any stage");
    assert_eq!(second.stages_restored, 0);
    assert_eq!(second.digest, first.digest);
    assert_eq!(obs.counter("serve.cache.hits"), Some(1));

    // `fresh` opts out of the cache but must land on the same bits.
    let fresh = detect_ok(addr, &DetectJob { fresh: true, ..j.clone() });
    assert!(!fresh.cached);
    assert_eq!(fresh.digest, first.digest);

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn corrupted_cache_entry_is_recomputed_never_served() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("corrupt", 13);
    let obs = Obs::enabled();
    let (handle, addr, state) =
        start("corrupt_state", ServeOptions { threads: 1, obs: obs.clone(), ..Default::default() });
    let j = job(&dirty, &clean, 3);

    let first = detect_ok(addr, &j);
    assert!(!first.cached);

    // Damage the single cache entry on disk, the way a torn write or a
    // bad sector would.
    let entries: Vec<PathBuf> = std::fs::read_dir(state.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "res"))
        .collect();
    assert_eq!(entries.len(), 1, "exactly one memo entry expected");
    corrupt_file(&entries[0], Corruption::Garble, 99).expect("corrupt cache entry");

    // The checksum catches it: the entry is evicted and the answer is
    // recomputed (here: restored stage-by-stage from the run's own
    // checkpoints), never decoded from the damaged bytes.
    let second = detect_ok(addr, &j);
    assert!(!second.cached, "a corrupt entry must never be served as a hit");
    assert_eq!(second.digest, first.digest);
    assert!(second.stages_restored > 0, "recompute resumes from the checkpointed frontier");
    assert_eq!(obs.counter("serve.cache.corrupt"), Some(1));

    // The recompute re-populated the cache with a valid entry.
    let third = detect_ok(addr, &j);
    assert!(third.cached);
    assert_eq!(third.digest, first.digest);

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn concurrent_tenants_match_their_serial_baselines_at_every_width() {
    let _s = serial();
    // Two tenants: different lakes, different seeds, different variants.
    let (root_a, dirty_a, clean_a) = write_pair("tenant_a", 21);
    let (root_b, dirty_b, clean_b) = write_pair("tenant_b", 22);
    let baseline_a =
        direct_digest(&dirty_a, &clean_a, MateldaConfig { seed: 3, ..Default::default() }, 20);
    let baseline_b = direct_digest(
        &dirty_b,
        &clean_b,
        MateldaConfig {
            seed: 9,
            domain_folding: DomainFolding::ExtremeDomainFolding,
            ..Default::default()
        },
        20,
    );

    for threads in [1usize, 2, 4] {
        let (handle, addr, state) = start(
            &format!("tenants_{threads}"),
            ServeOptions { threads, max_active: 2, ..Default::default() },
        );
        let job_a = job(&dirty_a, &clean_a, 3);
        let job_b = DetectJob { variant: "edf".to_string(), ..job(&dirty_b, &clean_b, 9) };
        // Simultaneously, over the one shared pool.
        let (out_a, out_b) = std::thread::scope(|s| {
            let ta = s.spawn(|| detect_ok(addr, &job_a));
            let tb = s.spawn(|| detect_ok(addr, &job_b));
            (ta.join().expect("tenant A"), tb.join().expect("tenant B"))
        });
        assert_eq!(
            out_a.digest, baseline_a,
            "tenant A must be isolated from tenant B at {threads} server thread(s)"
        );
        assert_eq!(
            out_b.digest, baseline_b,
            "tenant B must be isolated from tenant A at {threads} server thread(s)"
        );
        stop(addr, handle);
        let _ = std::fs::remove_dir_all(state);
    }
    let _ = std::fs::remove_dir_all(root_a);
    let _ = std::fs::remove_dir_all(root_b);
}

#[test]
fn overload_degrades_to_explicit_busy_not_unbounded_queueing() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("busy", 14);
    let obs = Obs::enabled();
    let hold = Latch::new();
    let (handle, addr, state) = start(
        "busy_state",
        ServeOptions {
            threads: 1,
            max_active: 1,
            max_queued: 1,
            obs: obs.clone(),
            hold: Some(hold.clone()),
            ..Default::default()
        },
    );
    let j = job(&dirty, &clean, 4);

    let responses = std::thread::scope(|s| {
        // Three identical requests into one active slot and one queue
        // slot: exactly one admits-and-holds, one queues, one must be
        // rejected with Busy carrying the gate's exact occupancy.
        let workers: Vec<_> = (0..3)
            .map(|_| s.spawn(|| request(addr, &Request::Detect(j.clone())).expect("request")))
            .collect();
        // The rejection is observable in the daemon's own telemetry;
        // only then is the gate provably full and the latch safe to
        // open.
        await_counter(&obs, "serve.busy", 1);
        hold.open();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect::<Vec<_>>()
    });

    let mut results = 0;
    let mut busy = 0;
    for resp in responses {
        match resp {
            Response::Result(_) => results += 1,
            Response::Busy { active, queued } => {
                busy += 1;
                assert_eq!((active, queued), (1, 1), "Busy must report the gate occupancy");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!((results, busy), (2, 1), "bounded gate: two served, one refused");

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn a_deadline_degrades_the_run_and_the_daemon_survives() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("deadline", 15);
    let (handle, addr, state) =
        start("deadline_state", ServeOptions { threads: 2, ..Default::default() });

    // Deterministic deadline: the armed timeout hook makes one classify
    // item read as deadline-exceeded, with a wall-clock budget (60s)
    // that never actually fires.
    let degraded = {
        let _armed = faultpoint::arm([("timeout:classify".to_string(), 0)]);
        detect_ok(addr, &DetectJob { deadline_ms: 60_000, ..job(&dirty, &clean, 6) })
    };
    // The contract: a blown deadline produces a degraded *answer* — it
    // never kills the request (no Faulted), let alone the daemon.
    assert!(!degraded.cached);

    // The daemon is fully alive: the same job without a deadline (a
    // different manifest key — the deadline is part of the config)
    // matches the uninterrupted baseline.
    let baseline =
        direct_digest(&dirty, &clean, MateldaConfig { seed: 6, ..Default::default() }, 20);
    let clean_run = detect_ok(addr, &job(&dirty, &clean, 6));
    assert_eq!(clean_run.digest, baseline);

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn a_faulted_run_answers_its_own_client_and_the_pool_keeps_serving() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("fault", 16);
    let obs = Obs::enabled();
    let (handle, addr, state) =
        start("fault_state", ServeOptions { threads: 2, obs: obs.clone(), ..Default::default() });
    let j = job(&dirty, &clean, 8);

    // A fault injected past every stage (the finalize point runs under
    // FaultPolicy::Fail semantics — it panics the run itself).
    {
        let _armed = faultpoint::arm([("finalize".to_string(), 0)]);
        match request(addr, &Request::Detect(DetectJob { fresh: true, ..j.clone() }))
            .expect("the connection must survive a faulted run")
        {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Faulted);
                assert!(message.contains("injected fault"), "got: {message}");
            }
            other => panic!("expected a Faulted error, got {other:?}"),
        }
    }
    assert_eq!(obs.counter("serve.faulted"), Some(1));

    // Quarantine is request-scoped: the shared pool and the daemon keep
    // serving, and the retried job — resuming from the checkpoints the
    // faulted run already committed — matches the direct baseline.
    let baseline =
        direct_digest(&dirty, &clean, MateldaConfig { seed: 8, ..Default::default() }, 20);
    let retried = detect_ok(addr, &j);
    assert_eq!(retried.digest, baseline);
    assert!(retried.stages_restored > 0, "the retry must reuse the faulted run's checkpoints");

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn shutdown_drains_in_flight_runs_and_refuses_new_ones() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("drain", 17);
    let obs = Obs::enabled();
    let hold = Latch::new();
    let (handle, addr, state) = start(
        "drain_state",
        ServeOptions {
            threads: 1,
            max_active: 1,
            obs: obs.clone(),
            hold: Some(hold.clone()),
            ..Default::default()
        },
    );
    let j = job(&dirty, &clean, 2);

    let (in_flight, ack) = std::thread::scope(|s| {
        let in_flight = s.spawn(|| request(addr, &Request::Detect(j.clone())).expect("detect"));
        // Wait for admission (the counter ticks as the held run passes
        // the gate, before it blocks on the latch), then shut down.
        await_counter(&obs, "serve.admitted", 1);
        let shutdown = s.spawn(move || request(addr, &Request::Shutdown).expect("shutdown"));
        // Draining refuses new work immediately — while the in-flight
        // run is still held.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match request(addr, &Request::Detect(j.clone())) {
                Ok(Response::ShuttingDown) => break,
                Ok(other) => panic!("admission during drain: {other:?}"),
                Err(_) => assert!(Instant::now() < deadline, "drain refusal never observed"),
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        hold.open();
        (in_flight.join().expect("in-flight client"), shutdown.join().expect("shutdown client"))
    });

    // The held run was drained to completion, not dropped.
    match in_flight {
        Response::Result(outcome) => assert!(outcome.stages_run > 0),
        other => panic!("in-flight run must complete through drain, got {other:?}"),
    }
    match ack {
        Response::ShutdownAck { drained } => assert_eq!(drained, 1),
        other => panic!("expected ShutdownAck, got {other:?}"),
    }
    handle.join();

    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn a_small_state_budget_is_never_exceeded_and_the_daemon_keeps_answering() {
    let _s = serial();
    // Size one run's state footprint with an unbudgeted daemon first.
    let (root, dirty, clean) = write_pair("budget", 31);
    let (handle, addr, state) =
        start("budget_sizing", ServeOptions { threads: 1, ..Default::default() });
    let baseline = detect_ok(addr, &job(&dirty, &clean, 40));
    let footprint = matelda_ckpt::dir_bytes(&state).expect("state dir sizes");
    stop(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
    assert!(footprint > 0, "a completed run must leave durable state");

    // A budget fitting ~3 runs, then a 6-key soak: eviction has to kick
    // in, every request still answers with the right bits, and the
    // on-disk footprint never exceeds the budget — sampled concurrently,
    // not just between requests.
    let budget = footprint * 3;
    let obs = Obs::enabled();
    let (handle, addr, state) = start(
        "budget_soak",
        ServeOptions {
            threads: 1,
            state_budget_bytes: budget,
            obs: obs.clone(),
            ..Default::default()
        },
    );
    let stop_sampling = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let state = state.clone();
        let stop_sampling = std::sync::Arc::clone(&stop_sampling);
        std::thread::spawn(move || {
            let mut max = 0u64;
            while !stop_sampling.load(std::sync::atomic::Ordering::SeqCst) {
                max = max.max(matelda_ckpt::dir_bytes(&state).unwrap_or(0));
                std::thread::sleep(Duration::from_millis(2));
            }
            max
        })
    };
    for seed in 40..46 {
        let outcome = detect_ok(addr, &job(&dirty, &clean, seed));
        assert!(!outcome.degraded, "3-run budget must fit each single active run (seed {seed})");
        if seed == 40 {
            assert_eq!(outcome.digest, baseline.digest, "budgeted daemon changes no bits");
        }
    }
    stop_sampling.store(true, std::sync::atomic::Ordering::SeqCst);
    let peak = sampler.join().expect("sampler");
    assert!(peak <= budget, "state dir peaked at {peak} bytes over the {budget}-byte budget");
    assert!(
        obs.counter("serve.state.evictions").unwrap_or(0) > 0,
        "6 runs into a 3-run budget must evict"
    );

    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}

#[test]
fn an_unpayable_budget_degrades_by_default_and_refuses_under_strict() {
    let _s = serial();
    let (root, dirty, clean) = write_pair("nospace", 32);
    let baseline =
        direct_digest(&dirty, &clean, MateldaConfig { seed: 12, ..Default::default() }, 20);

    // 16 bytes: no checkpoint (or memo entry) can ever commit. Default
    // policy answers anyway — correct bits, marked degraded, resume
    // gone — and the memo-store failure is counted, not fatal.
    let obs = Obs::enabled();
    let (handle, addr, state) = start(
        "nospace_degrade",
        ServeOptions { threads: 1, state_budget_bytes: 16, obs: obs.clone(), ..Default::default() },
    );
    let outcome = detect_ok(addr, &job(&dirty, &clean, 12));
    assert!(outcome.degraded, "an unwritable state dir must degrade the run");
    assert_eq!(outcome.digest, baseline, "degraded runs still produce the clean digest");
    assert_eq!(obs.counter("serve.degraded"), Some(1));
    assert_eq!(obs.counter("serve.cache.store_failed"), Some(1));
    stop(addr, handle);
    let _ = std::fs::remove_dir_all(state);

    // Strict durability turns the same situation into an explicit
    // StorageFull refusal — the one case that error names.
    let (handle, addr, state) = start(
        "nospace_strict",
        ServeOptions {
            threads: 1,
            state_budget_bytes: 16,
            strict_durability: true,
            ..Default::default()
        },
    );
    match request(addr, &Request::Detect(job(&dirty, &clean, 12))).expect("connection survives") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::StorageFull),
        other => panic!("expected StorageFull under strict durability, got {other:?}"),
    }
    stop(addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(state);
}
