//! Wire-protocol hardening (ISSUE 7, satellite 1): the frame reader and
//! message decoders are total — arbitrary bytes produce structured
//! errors, never panics, never allocations proportional to a claimed
//! length — and a connection that received garbage keeps working.

use matelda_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DetectJob, DetectOutcome, ErrorKind, FrameError, Request, Response, MAX_FRAME,
};
use proptest::prelude::*;
use std::io::Cursor;

/// Full-range u64 (the vendored shim has range strategies, not `any`).
fn arb_u64() -> impl Strategy<Value = u64> {
    (0u64..u64::MAX).prop_map(|x| x)
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..max)
}

fn arb_job() -> impl Strategy<Value = DetectJob> {
    (
        ("[ -~]{0,40}", "[ -~]{0,40}", 0u64..10_000, arb_u64()),
        ("[a-z]{0,8}", 0u64..100_000, arb_bool()),
    )
        .prop_map(|((dirty_dir, clean_dir, budget, seed), (variant, deadline_ms, fresh))| {
            DetectJob { dirty_dir, clean_dir, budget, seed, variant, deadline_ms, fresh }
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    // Variant selector + payload: the shim has no `prop_oneof!`.
    (0u8..3, arb_job()).prop_map(|(pick, job)| match pick {
        0 => Request::Ping,
        1 => Request::Shutdown,
        _ => Request::Detect(job),
    })
}

fn arb_outcome() -> impl Strategy<Value = DetectOutcome> {
    (
        (arb_u64(), 0u64..1000, 0u64..100, 0u64..1000),
        (0u64..100_000, 0u64..16, 0u64..7, 0u64..7),
        (arb_bool(), arb_bool()),
    )
        .prop_map(
            |(
                (digest, labels_used, n_domain_folds, n_quality_folds),
                (flagged, quarantined_tables, stages_run, stages_restored),
                (cached, degraded),
            )| DetectOutcome {
                digest,
                labels_used,
                n_domain_folds,
                n_quality_folds,
                flagged,
                quarantined_tables,
                stages_run,
                stages_restored,
                cached,
                degraded,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0u8..6, arb_outcome(), (0u64..100, 0u64..100), (0u8..6, "[ -~]{0,60}")).prop_map(
        |(pick, outcome, (active, queued), (k, message))| match pick {
            0 => Response::Pong,
            1 => Response::ShuttingDown,
            2 => Response::Result(outcome),
            3 => Response::Busy { active, queued },
            4 => Response::ShutdownAck { drained: active },
            _ => Response::Error {
                kind: match k {
                    0 => ErrorKind::Protocol,
                    1 => ErrorKind::BadRequest,
                    2 => ErrorKind::Ingest,
                    3 => ErrorKind::Checkpoint,
                    4 => ErrorKind::StorageFull,
                    _ => ErrorKind::Faulted,
                },
                message,
            },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip(req in arb_request()) {
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in arb_bytes(300)) {
        // Either outcome is fine; reaching it without panicking is the
        // property.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn truncated_valid_payloads_error_cleanly(req in arb_request(), keep_frac in 0.0f64..1.0) {
        let full = encode_request(&req);
        let keep = ((full.len() as f64) * keep_frac) as usize;
        if keep < full.len() {
            prop_assert!(decode_request(&full[..keep]).is_err());
        }
    }

    #[test]
    fn frame_reader_never_panics_on_arbitrary_streams(bytes in arb_bytes(64)) {
        let mut cursor = Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }
}

#[test]
fn oversized_frame_is_drained_and_the_stream_survives() {
    // Header claims MAX_FRAME + 1 bytes; the reader must drain exactly
    // that many and leave the stream at the next frame.
    let oversized_len = MAX_FRAME + 1;
    let mut stream = Vec::new();
    stream.extend_from_slice(&oversized_len.to_le_bytes());
    stream.extend(std::iter::repeat_n(0xAB, oversized_len as usize));
    write_frame(&mut stream, &encode_request(&Request::Ping)).unwrap();

    let mut cursor = Cursor::new(stream);
    match read_frame(&mut cursor) {
        Err(FrameError::Oversized { claimed }) => assert_eq!(claimed, oversized_len),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // The next frame decodes normally: the connection survived.
    let payload = read_frame(&mut cursor).expect("stream must be positioned at the next frame");
    assert_eq!(decode_request(&payload).unwrap(), Request::Ping);
}

#[test]
fn clean_close_and_truncation_are_distinguished() {
    let mut empty = Cursor::new(Vec::<u8>::new());
    assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));

    let mut partial_header = Cursor::new(vec![5u8, 0]);
    assert!(matches!(read_frame(&mut partial_header), Err(FrameError::Truncated)));

    let mut partial_payload = Cursor::new(vec![5u8, 0, 0, 0, 1, 2]);
    assert!(matches!(read_frame(&mut partial_payload), Err(FrameError::Truncated)));
}

#[test]
fn a_giant_claimed_length_does_not_allocate() {
    // u32::MAX claimed, 16 actual bytes: the reader must not trust the
    // header for allocation. If it did, this would OOM or panic.
    let mut stream = Vec::new();
    stream.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.extend_from_slice(&[0u8; 16]);
    let mut cursor = Cursor::new(stream);
    // Drain hits EOF after 16 bytes → Truncated, not a 4 GiB buffer.
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated)));
}
