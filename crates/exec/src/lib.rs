//! # matelda-exec
//!
//! The deterministic parallel substrate of the staged pipeline engine:
//!
//! * [`Pool`] — a persistent work-stealing thread pool. Workers are
//!   spawned lazily on the first parallel map and live for the pool's
//!   lifetime (one pool per pipeline run), so per-map cost is a condvar
//!   wake instead of a thread spawn/join. Built on `std` only, per the
//!   workspace crate policy.
//! * [`Executor`] — an ordered map over an index space, scheduled on the
//!   pool. Work is claimed dynamically (chunked per-participant range
//!   deques with stealing) for balance, but results are always merged
//!   **in index order**, so output is bit-identical at any thread count.
//! * [`Executor::try_map`] / [`Executor::try_map_n`] — the fault-isolated
//!   variants: each work item runs under `catch_unwind`, a panic becomes
//!   an [`ItemFault`] for that index only, and the index-ordered merge is
//!   preserved, so degradation is as deterministic as success. Workers
//!   are long-lived — an item panic never kills a pool thread.
//! * [`RunReport`] / [`StageReport`] — per-stage wall time plus work
//!   counters and the structured fault log, threaded through every stage
//!   of a pipeline run and rendered as aligned text or JSON.
//! * [`faultpoint`] — a test-only injection hook the chaos harness arms
//!   to panic chosen `(stage, index)` work items.

mod pool;

pub use pool::{Pool, WEDGE_FAULTPOINT};

use matelda_obs::{Buckets, Obs, Stopwatch};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One isolated work-item failure: the stage it happened in, the item
/// index within the stage's index space, and the panic payload (or error
/// rendering) that killed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFault {
    /// Stage name the faulted item belonged to (e.g. `embed`).
    pub stage: String,
    /// Index of the work item within the stage's map.
    pub index: usize,
    /// Human-readable panic payload or error message.
    pub message: String,
}

impl ItemFault {
    /// Creates a fault record.
    pub fn new(stage: &str, index: usize, message: impl Into<String>) -> Self {
        ItemFault { stage: stage.to_string(), index, message: message.into() }
    }
}

impl fmt::Display for ItemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.stage, self.index, self.message)
    }
}

/// The fault message of a work item pre-empted by a stage deadline. A
/// constant string (never interpolating the measured time) so that a
/// timed-out run is bit-identical however the deadline was detected.
pub const DEADLINE_FAULT: &str = "stage deadline exceeded";

/// A per-stage watchdog deadline for [`Executor::try_map_within`]: work
/// items claimed after the deadline are not run — they fault with
/// [`DEADLINE_FAULT`] and flow through the same degradation paths as a
/// panicked item. Items already running are never interrupted (the
/// executor has no pre-emption), so a deadline bounds *scheduling* of
/// new work, not the slowest single item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline { at: Instant::now() + timeout }
    }

    /// Whether the deadline has passed.
    pub fn exceeded(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Renders a caught panic payload as a message (`&str` and `String`
/// payloads pass through; anything else becomes a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A deterministic parallel executor over a persistent [`Pool`].
///
/// The contract: `map_n(n, f)` returns `[f(0), f(1), …, f(n-1)]` — the
/// same vector at every thread count. `f` runs concurrently across
/// threads, so it must not rely on call order; every stochastic stage in
/// the workspace derives a per-index seed instead.
///
/// Cloning shares the pool: the engine builds one executor per run and
/// every stage (including clones re-tuned via
/// [`Executor::with_inline_threshold`]) schedules onto the same
/// lazily-spawned workers. The calling thread is always participant 0 of
/// a parallel map, so `threads` means *total* parallelism: a 1-thread
/// executor never wakes (or spawns) a pool thread, and a map issued from
/// inside a pool task runs inline instead of re-entering the pool.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    inline_threshold: usize,
    obs: Obs,
    pool: Arc<Pool>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(0)
    }
}

impl Executor {
    /// Creates an executor with `threads`-way parallelism; `0` means the
    /// host's available parallelism, resolved once here — never per map.
    /// No pool thread starts until the first parallel map needs one.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Executor {
            threads,
            inline_threshold: 0,
            obs: Obs::disabled(),
            pool: Arc::new(Pool::new(threads)),
        }
    }

    /// A single-threaded executor (runs everything inline; its pool
    /// never spawns a thread).
    pub fn single() -> Self {
        Executor::new(1)
    }

    /// Number of pool threads actually started so far (0 until the
    /// first parallel map — the lazy-startup contract, shared across
    /// clones).
    pub fn workers_spawned(&self) -> usize {
        self.pool.workers_spawned()
    }

    /// Sets the small-batch serial fallback: a map over fewer than
    /// `threshold × threads` items runs inline on the calling thread
    /// without waking (or spawning) pool workers. Even with persistent
    /// workers, a parallel map costs a condvar round-trip per worker;
    /// stages whose items are cheap and few (the label stage maps ~38
    /// folds) opt in per call site — the clone shares the pool, so the
    /// tuning is free. `0` (the default) disables the fallback — the
    /// executor's map item counts are stage-specific, so a global
    /// threshold would serialize stages that do benefit from threads.
    ///
    /// The merged output is bit-identical either way; only scheduling
    /// changes.
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.inline_threshold = threshold;
        self
    }

    /// The small-batch serial-fallback threshold (`0` = disabled).
    pub fn inline_threshold(&self) -> usize {
        self.inline_threshold
    }

    /// Whether a map over `n` items takes the serial path. Maps issued
    /// from inside a pool task always do: the pool's workers are busy
    /// running the outer map, so nesting would deadlock-or-oversubscribe
    /// for no benefit. (The merge order is index-driven either way, so
    /// inlining never changes results.)
    fn runs_inline(&self, n: usize) -> bool {
        self.threads <= 1
            || n <= 1
            || n < self.inline_threshold.saturating_mul(self.threads)
            || pool::in_pool_task()
    }

    /// Attaches an observability handle: fault-isolated maps then emit
    /// one `exec` span per worker (items claimed, busy time) and a
    /// per-item latency histogram keyed by stage name. Disabled handles
    /// cost nothing on the per-item path.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Bounds how long dropping the underlying [`Pool`] waits for worker
    /// threads to exit before detaching stragglers (see
    /// [`Pool::set_join_deadline`]). Shared across all clones of this
    /// executor — the pool is the unit of shutdown, not the clone.
    pub fn with_join_deadline(self, deadline: Duration) -> Self {
        self.pool.set_join_deadline(deadline);
        self
    }

    /// Attaches a telemetry handle to the underlying [`Pool`] for
    /// shutdown leak reports (`pool.leak` events,
    /// `exec.pool.leaked_workers` counter). Deliberately separate from
    /// [`Executor::with_obs`]: per-run handles come and go with each
    /// request, while pool-level telemetry belongs to whoever owns the
    /// pool's lifetime (e.g. a daemon's own handle).
    pub fn with_pool_obs(self, obs: &Obs) -> Self {
        self.pool.attach_obs(obs);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n`, merging results in index order.
    pub fn map_n<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.runs_inline(n) {
            return (0..n).map(f).collect();
        }
        let participants = self.threads.min(n);
        let ranges = pool::Ranges::new(n, participants);
        let gathered: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(participants));
        self.pool.run(participants, &|pid| {
            let mut mine: Vec<(usize, R)> = Vec::new();
            while let Some((range, _stolen)) = ranges.claim(pid) {
                for i in range {
                    mine.push((i, f(i)));
                }
            }
            gathered.lock().unwrap_or_else(PoisonError::into_inner).push(mine);
        });

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for batch in gathered.into_inner().unwrap_or_else(PoisonError::into_inner) {
            for (i, r) in batch {
                slots[i] = Some(r);
            }
        }
        slots.into_iter().map(|s| s.expect("every index produced exactly once")).collect()
    }

    /// Maps `f` over a slice, merging results in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_n(items.len(), |i| f(i, &items[i]))
    }

    /// Fault-isolated [`Executor::map_n`]: each `f(i)` runs under
    /// `catch_unwind`, so a panic in one work item becomes
    /// `Err(ItemFault)` at that index instead of tearing down the run.
    /// Results still merge in index order — `try_map_n` at any thread
    /// count returns the same vector, faults included, which is what
    /// keeps degraded runs bit-identical.
    ///
    /// `stage` names the stage in the fault records.
    pub fn try_map_n<R, F>(&self, stage: &str, n: usize, f: F) -> Vec<Result<R, ItemFault>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.try_map_n_within(stage, n, None, f)
    }

    /// [`Executor::try_map_n`] in consecutive windows of at most
    /// `window` items: window `w` maps indices `[w*window, …)` with the
    /// full pool, and the next window starts only when it finishes.
    /// Results concatenate in index order, so the output is identical
    /// to one `try_map_n(stage, n, f)` call at every thread count — the
    /// point is *pacing*, not semantics: a streaming stage can bound
    /// how many items' worth of intermediate state is live at once
    /// (out-of-core featurization sizes windows to its memory budget).
    pub fn try_map_windowed<R, F>(
        &self,
        stage: &str,
        n: usize,
        window: usize,
        f: F,
    ) -> Vec<Result<R, ItemFault>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let window = window.max(1);
        let mut out = Vec::with_capacity(n);
        let mut base = 0;
        while base < n {
            let len = window.min(n - base);
            let mut part = self.try_map_n(stage, len, |i| f(base + i));
            // Fault records carry stage-global indices, not window-local.
            for r in &mut part {
                if let Err(fault) = r {
                    fault.index += base;
                }
            }
            out.extend(part);
            base += len;
        }
        out
    }

    /// [`Executor::try_map_n`] under a watchdog [`Deadline`]: an item
    /// claimed after the deadline has passed (or whose
    /// `timeout:<stage>` faultpoint is armed — the deterministic test
    /// hook) is not run and faults with [`DEADLINE_FAULT`]. With
    /// `deadline = None` this is exactly `try_map_n`.
    pub fn try_map_n_within<R, F>(
        &self,
        stage: &str,
        n: usize,
        deadline: Option<Deadline>,
        f: F,
    ) -> Vec<Result<R, ItemFault>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let guarded = |i: usize| -> Result<R, ItemFault> {
            if faultpoint::timeout_armed(stage, i) || deadline.is_some_and(|d| d.exceeded()) {
                return Err(ItemFault::new(stage, i, DEADLINE_FAULT));
            }
            catch_unwind(AssertUnwindSafe(|| f(i)))
                .map_err(|payload| ItemFault::new(stage, i, panic_message(payload.as_ref())))
        };
        // Per-item latency histogram, keyed once per call — the per-item
        // path pays a single `Option` branch when tracing is off.
        let hist = self.obs.is_enabled().then(|| format!("exec.item_us.{stage}"));
        if self.runs_inline(n) {
            let mut span = self.obs.span("exec", stage);
            let out = match &hist {
                Some(h) => (0..n)
                    .map(|i| {
                        let watch = Stopwatch::start();
                        let r = guarded(i);
                        self.obs.record(h, watch.elapsed_secs() * 1e6, Buckets::LatencyUs);
                        r
                    })
                    .collect(),
                None => (0..n).map(guarded).collect(),
            };
            span.arg("items", n as f64);
            span.finish_secs();
            return out;
        }
        let participants = self.threads.min(n);
        let ranges = pool::Ranges::new(n, participants);
        let gathered: Mutex<Vec<Vec<(usize, Result<R, ItemFault>)>>> =
            Mutex::new(Vec::with_capacity(participants));
        let obs = &self.obs;
        // One span per map *participation* (workers are persistent, so a
        // span per thread lifetime would smear every stage together):
        // participant `pid` traces on tid lane `pid + 1`, with the items
        // it claimed, its busy time, and how many chunks it stole.
        self.pool.run(participants, &|pid| {
            let mut span = obs.span("exec", stage).with_tid(pid as u64 + 1);
            let mut busy_us = 0.0f64;
            let mut steals = 0u64;
            let mut mine: Vec<(usize, Result<R, ItemFault>)> = Vec::new();
            while let Some((range, stolen)) = ranges.claim(pid) {
                steals += u64::from(stolen);
                for i in range {
                    match &hist {
                        Some(h) => {
                            let watch = Stopwatch::start();
                            let r = guarded(i);
                            let us = watch.elapsed_secs() * 1e6;
                            busy_us += us;
                            obs.record(h, us, Buckets::LatencyUs);
                            mine.push((i, r));
                        }
                        None => mine.push((i, guarded(i))),
                    }
                }
            }
            let items = mine.len();
            span.arg("items", items as f64);
            span.arg("busy_us", busy_us);
            let wall = span.finish_secs();
            if hist.is_some() {
                obs.counter_add(&format!("exec.worker_items.{stage}.w{pid}"), items as u64);
                if steals > 0 {
                    obs.counter_add(&format!("exec.steals.{stage}"), steals);
                }
                if wall > 0.0 {
                    obs.gauge_set(
                        &format!("exec.worker_util.{stage}.w{pid}"),
                        (busy_us / 1e6) / wall,
                    );
                }
            }
            gathered.lock().unwrap_or_else(PoisonError::into_inner).push(mine);
        });

        let mut slots: Vec<Option<Result<R, ItemFault>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for batch in gathered.into_inner().unwrap_or_else(PoisonError::into_inner) {
            for (i, r) in batch {
                slots[i] = Some(r);
            }
        }
        slots.into_iter().map(|s| s.expect("every index produced exactly once")).collect()
    }

    /// Fault-isolated [`Executor::map`] (see [`Executor::try_map_n`]).
    pub fn try_map<T, R, F>(&self, stage: &str, items: &[T], f: F) -> Vec<Result<R, ItemFault>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map_n(stage, items.len(), |i| f(i, &items[i]))
    }

    /// Fault-isolated slice map under a watchdog [`Deadline`] (see
    /// [`Executor::try_map_n_within`]).
    pub fn try_map_within<T, R, F>(
        &self,
        stage: &str,
        items: &[T],
        deadline: Option<Deadline>,
        f: F,
    ) -> Vec<Result<R, ItemFault>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map_n_within(stage, items.len(), deadline, |i| f(i, &items[i]))
    }
}

/// Instrumentation for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// Stage name (e.g. `embed`, `quality_folds`).
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub wall_secs: f64,
    /// Work units processed (cells, tables, folds, columns — per stage).
    pub items: u64,
    /// Extra named measurements (fold counts, labels spent, …).
    pub metrics: Vec<(String, f64)>,
}

impl StageReport {
    /// Creates an empty report for `name`.
    pub fn new(name: &str) -> Self {
        StageReport { name: name.to_string(), ..Default::default() }
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Instrumentation for a whole pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Executor thread count the run used.
    pub threads: usize,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
    /// Isolated work-item failures, in (stage execution, index) order.
    pub faults: Vec<ItemFault>,
}

impl RunReport {
    /// Creates an empty report for a run at `threads` threads.
    pub fn new(threads: usize) -> Self {
        RunReport { threads, stages: Vec::new(), faults: Vec::new() }
    }

    /// Total wall time across stages.
    pub fn total_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_secs).sum()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Times `f`, records it as stage `name`, and returns its output.
    /// The closure receives a handle to annotate items/metrics. Timing
    /// goes through the obs [`Stopwatch`] — the workspace's single
    /// monotonic-timing primitive — rather than an ad-hoc `Instant`
    /// pair.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce(&mut StageReport) -> R) -> R {
        let mut stage = StageReport::new(name);
        let watch = Stopwatch::start();
        let out = f(&mut stage);
        stage.wall_secs = watch.elapsed_secs();
        self.stages.push(stage);
        out
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>10}  metrics ({} thread{})\n",
            "stage",
            "wall",
            "items",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        ));
        for s in &self.stages {
            let metrics =
                s.metrics.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ");
            out.push_str(&format!(
                "{:<16} {:>9.4}s {:>10}  {}\n",
                s.name, s.wall_secs, s.items, metrics
            ));
        }
        out.push_str(&format!("{:<16} {:>9.4}s\n", "total", self.total_secs()));
        for fault in &self.faults {
            out.push_str(&format!("fault: {fault}\n"));
        }
        out
    }

    /// Serializes as JSON (hand-rolled; stage names and metric keys are
    /// plain identifiers, values are finite numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"threads\":{},\"total_secs\":{:.6},\"stages\":[",
            self.threads,
            self.total_secs()
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_secs\":{:.6},\"items\":{}",
                json_escape(&s.name),
                s.wall_secs,
                s.items
            ));
            if !s.metrics.is_empty() {
                out.push_str(",\"metrics\":{");
                for (j, (k, v)) in s.metrics.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", json_escape(k), json_number(*v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push(']');
        if !self.faults.is_empty() {
            out.push_str(",\"faults\":[");
            for (i, fault) in self.faults.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"stage\":\"{}\",\"index\":{},\"message\":\"{}\"}}",
                    json_escape(&fault.stage),
                    fault.index,
                    json_escape(&fault.message)
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Test-only fault injection.
///
/// The chaos harness arms a set of `(stage, index)` points; stage bodies
/// call [`hit`](faultpoint::hit) at the top of each work item and panic
/// when their point is armed. Disarmed, the hook is a single relaxed
/// atomic load, so the production path pays (almost) nothing. Injected
/// panics carry a recognizable
/// [`INJECTED_PREFIX`](faultpoint::INJECTED_PREFIX) payload and are
/// suppressed from the default panic report, so chaos runs don't spray
/// backtraces.
///
/// Arming is globally exclusive: [`arm`](faultpoint::arm) holds a
/// process-wide lock until the returned guard drops, which serializes
/// concurrently running chaos tests instead of cross-contaminating them.
pub mod faultpoint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// Payload prefix of injected panics (lets hooks and asserts
    /// distinguish planned faults from real bugs).
    pub const INJECTED_PREFIX: &str = "injected fault at ";

    static ARMED: AtomicBool = AtomicBool::new(false);

    fn plan() -> &'static Mutex<Vec<(String, usize)>> {
        static PLAN: OnceLock<Mutex<Vec<(String, usize)>>> = OnceLock::new();
        PLAN.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn exclusivity() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Installs (once) a panic hook that silences injected-fault panics
    /// and delegates everything else to the previous hook.
    fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with(INJECTED_PREFIX));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    /// Keeps the injection plan armed; dropping disarms and releases the
    /// exclusivity lock.
    pub struct ArmedGuard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ArmedGuard {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            plan().lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    /// Takes the faultpoint exclusivity lock without arming anything.
    ///
    /// The plan is process-global, so a *control* run in a test binary
    /// whose other tests inject faults must hold this guard: otherwise,
    /// under a parallel test runner, it can trip a point some other
    /// test armed and report phantom faults.
    pub fn quiesce() -> ArmedGuard {
        arm(std::iter::empty::<(String, usize)>())
    }

    /// Arms the given `(stage, index)` points until the guard drops.
    pub fn arm(points: impl IntoIterator<Item = (String, usize)>) -> ArmedGuard {
        // A failed assertion in a previous chaos test poisons the lock;
        // the plan is reset on every arm, so poisoning is harmless.
        let lock = exclusivity().lock().unwrap_or_else(PoisonError::into_inner);
        silence_injected_panics();
        *plan().lock().unwrap_or_else(PoisonError::into_inner) = points.into_iter().collect();
        ARMED.store(true, Ordering::SeqCst);
        ArmedGuard { _lock: lock }
    }

    /// Panics iff `(stage, index)` is armed. Stage bodies call this at
    /// the top of each work item.
    #[inline]
    pub fn hit(stage: &str, index: usize) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let armed = plan().lock().unwrap_or_else(PoisonError::into_inner);
        if armed.iter().any(|(s, i)| s == stage && *i == index) {
            drop(armed);
            std::panic::panic_any(format!("{INJECTED_PREFIX}{stage}[{index}]"));
        }
    }

    /// Non-panicking query: is `(stage, index)` armed? Used by callers
    /// that degrade on an armed point instead of panicking (the
    /// deadline hook below).
    #[inline]
    pub fn is_armed(stage: &str, index: usize) -> bool {
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
        let armed = plan().lock().unwrap_or_else(PoisonError::into_inner);
        armed.iter().any(|(s, i)| s == stage && *i == index)
    }

    /// The deterministic stage-timeout hook: arming `("timeout:<stage>",
    /// index)` makes the executor treat that work item as
    /// deadline-exceeded without any wall-clock sleep — the item is
    /// skipped and faults with
    /// [`DEADLINE_FAULT`](crate::DEADLINE_FAULT), identically at any
    /// thread count. Disarmed, this is one relaxed atomic load.
    #[inline]
    pub fn timeout_armed(stage: &str, index: usize) -> bool {
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
        is_armed(&format!("timeout:{stage}"), index)
    }

    /// The environment variable subprocess chaos tests arm faults
    /// through: comma-separated `stage:index` points, where the stage
    /// may itself contain colons (`timeout:classify:2` parses as
    /// `("timeout:classify", 2)` — the split is on the *last* colon).
    pub const FAULTPOINT_ENV: &str = "MATELDA_FAULTPOINTS";

    /// Arms faultpoints from [`FAULTPOINT_ENV`] for the life of the
    /// process. Binaries call this once at startup; with the variable
    /// unset (or holding no parseable point) nothing is armed. Unlike
    /// [`arm`] there is no guard to drop — a subprocess's plan never
    /// changes, so the guard (and the exclusivity lock it holds) is
    /// deliberately leaked.
    pub fn arm_from_env() {
        let Ok(raw) = std::env::var(FAULTPOINT_ENV) else { return };
        let points: Vec<(String, usize)> = raw
            .split(',')
            .filter_map(|p| {
                let (stage, idx) = p.trim().rsplit_once(':')?;
                Some((stage.to_string(), idx.parse().ok()?))
            })
            .collect();
        if !points.is_empty() {
            std::mem::forget(arm(points));
        }
    }
}

/// JSON-safe number formatting (no NaN/Inf in JSON).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_n_is_ordered_and_complete() {
        for threads in [1, 2, 4, 7] {
            let exec = Executor::new(threads);
            let out = exec.map_n(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_results_identical_across_thread_counts() {
        let items: Vec<usize> = (0..57).collect();
        let expensive = |_, &x: &usize| {
            // Uneven work to exercise dynamic claiming.
            (0..(x % 7) * 1000).fold(x as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        };
        let base = Executor::single().map(&items, expensive);
        for threads in [2, 3, 4, 8] {
            assert_eq!(Executor::new(threads).map(&items, expensive), base);
        }
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::single().threads(), 1);
    }

    #[test]
    fn empty_and_singleton_maps() {
        let exec = Executor::new(4);
        assert!(exec.map_n(0, |i| i).is_empty());
        assert_eq!(exec.map_n(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn inline_threshold_boundary_serial_below_parallel_at() {
        // threshold 4 × 2 threads = 8: n = 7 must run inline on the
        // calling thread, n = 8 must spawn workers. The worker spans
        // make scheduling observable: the serial path emits exactly one
        // span, the parallel path one per worker.
        let threshold = 4;
        let threads = 2;
        for (n, expect_spans) in [(threshold * threads - 1, 1), (threshold * threads, threads)] {
            let obs = matelda_obs::Obs::enabled();
            let exec =
                Executor::new(threads).with_inline_threshold(threshold).with_obs(obs.clone());
            let out = exec.try_map_n("s", n, |i| i * 7);
            assert_eq!(out.len(), n);
            assert_eq!(obs.spans().len(), expect_spans, "n={n}");
        }
    }

    #[test]
    fn inline_threshold_output_identical_to_parallel() {
        let items: Vec<usize> = (0..38).collect();
        let work = |_, &x: &usize| {
            (0..(x % 5) * 100).fold(x as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        };
        let base = Executor::single().map(&items, work);
        for threads in [2, 4] {
            // Threshold 32 × threads > 38 items → serial fallback fires.
            let exec = Executor::new(threads).with_inline_threshold(32);
            assert_eq!(exec.inline_threshold(), 32);
            assert_eq!(exec.map(&items, work), base, "threads={threads}");
            // Disabled threshold (default) goes parallel; same bits.
            assert_eq!(Executor::new(threads).map(&items, work), base);
        }
    }

    #[test]
    fn report_records_and_renders() {
        let mut report = RunReport::new(2);
        let out = report.time("embed", |s| {
            s.items = 5;
            s.metrics.push(("dims".into(), 128.0));
            "done"
        });
        assert_eq!(out, "done");
        report.time("train", |s| s.items = 33);
        assert_eq!(report.stages.len(), 2);
        assert!(report.stage("embed").expect("exists").wall_secs >= 0.0);
        assert_eq!(report.stage("embed").expect("exists").metric("dims"), Some(128.0));
        let text = report.render();
        assert!(text.contains("embed") && text.contains("train") && text.contains("total"));
        let json = report.to_json();
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"name\":\"embed\""));
        assert!(json.contains("\"dims\":128"));
    }

    #[test]
    fn json_number_formats() {
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(0.5), "0.500000");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn try_map_isolates_panics_per_index() {
        let _armed = faultpoint::arm(Vec::new()); // silence hook + exclusivity
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let out = exec.try_map_n("stage", 10, |i| {
                if i % 3 == 0 {
                    panic!("boom {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 10, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i % 3 == 0 {
                    let fault = r.as_ref().expect_err("panicked index must fault");
                    assert_eq!(fault.stage, "stage");
                    assert_eq!(fault.index, i);
                    assert_eq!(fault.message, format!("boom {i}"));
                } else {
                    assert_eq!(*r.as_ref().expect("survivor"), i * 2);
                }
            }
        }
    }

    #[test]
    fn try_map_matches_map_when_nothing_faults() {
        let items: Vec<usize> = (0..23).collect();
        let exec = Executor::new(3);
        let plain = exec.map(&items, |_, &x| x + 1);
        let tried: Vec<usize> = exec
            .try_map("s", &items, |_, &x| x + 1)
            .into_iter()
            .map(|r| r.expect("no faults"))
            .collect();
        assert_eq!(plain, tried);
    }

    #[test]
    fn faultpoint_injects_only_armed_points_and_disarms_on_drop() {
        let exec = Executor::new(2);
        {
            let _armed = faultpoint::arm(vec![("s".to_string(), 3), ("s".to_string(), 5)]);
            let out = exec.try_map_n("s", 8, |i| {
                faultpoint::hit("s", i);
                faultpoint::hit("other", i); // not armed for this stage
                i
            });
            let faulted: Vec<usize> =
                out.iter().enumerate().filter(|(_, r)| r.is_err()).map(|(i, _)| i).collect();
            assert_eq!(faulted, vec![3, 5]);
            assert!(out[3].as_ref().is_err_and(|f| f.message.contains("injected fault")));
        }
        // Guard dropped: the same run is fault-free.
        let out = exec.try_map_n("s", 8, |i| {
            faultpoint::hit("s", i);
            i
        });
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn windowed_map_concatenates_identically_to_one_call() {
        let _armed = faultpoint::arm(vec![("w".to_string(), 4), ("w".to_string(), 9)]);
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let whole = exec.try_map_n("w", 13, |i| {
                faultpoint::hit("w", i);
                i * i
            });
            for window in [1, 2, 3, 5, 13, 100] {
                let windowed = exec.try_map_windowed("w", 13, window, |i| {
                    faultpoint::hit("w", i);
                    i * i
                });
                assert_eq!(windowed.len(), whole.len(), "threads={threads} window={window}");
                for (i, (a, b)) in windowed.iter().zip(&whole).enumerate() {
                    match (a, b) {
                        (Ok(x), Ok(y)) => assert_eq!(x, y, "item {i} window {window}"),
                        (Err(fa), Err(fb)) => {
                            // Faults keep their global index and stage.
                            assert_eq!(fa.stage, fb.stage, "item {i}");
                            assert_eq!(fa.index, fb.index, "item {i}");
                        }
                        other => panic!("item {i} window {window}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn armed_timeout_point_faults_without_running_the_item() {
        let _armed = faultpoint::arm(vec![("timeout:slow".to_string(), 2)]);
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let ran = AtomicUsize::new(0);
            let out = exec.try_map_n_within("slow", 5, None, |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                i
            });
            assert_eq!(ran.load(Ordering::SeqCst), 4, "threads={threads}: item 2 must not run");
            for (i, r) in out.iter().enumerate() {
                if i == 2 {
                    let fault = r.as_ref().expect_err("armed timeout must fault");
                    assert_eq!(fault.message, DEADLINE_FAULT);
                    assert_eq!(fault.stage, "slow");
                } else {
                    assert_eq!(*r.as_ref().expect("survivor"), i, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn expired_deadline_faults_every_item_and_fresh_deadline_none() {
        let exec = Executor::new(2);
        let expired = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let out = exec.try_map_n_within("s", 6, Some(expired), |i| i);
        assert!(out.iter().all(|r| r.as_ref().is_err_and(|f| f.message == DEADLINE_FAULT)));

        let roomy = Deadline::after(Duration::from_secs(3600));
        let out = exec.try_map_n_within("s", 6, Some(roomy), |i| i);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn try_map_within_none_matches_try_map() {
        let items: Vec<usize> = (0..17).collect();
        let exec = Executor::new(3);
        let a = exec.try_map("s", &items, |_, &x| x * 3);
        let b = exec.try_map_within("s", &items, None, |_, &x| x * 3);
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_and_serializes_faults() {
        let mut report = RunReport::new(1);
        report.time("embed", |s| s.items = 3);
        report.faults.push(ItemFault::new("embed", 2, "injected fault at embed[2]"));
        assert!(report.render().contains("fault: embed[2]"));
        let json = report.to_json();
        assert!(json.contains("\"faults\":[{\"stage\":\"embed\",\"index\":2"), "{json}");
    }

    #[test]
    fn instrumented_try_map_records_spans_histograms_and_same_output() {
        for threads in [1usize, 3] {
            let obs = matelda_obs::Obs::enabled();
            let plain = Executor::new(threads);
            let traced = Executor::new(threads).with_obs(obs.clone());
            let a = plain.try_map_n("s", 16, |i| i * i);
            let b = traced.try_map_n("s", 16, |i| i * i);
            assert_eq!(a, b, "tracing must not change results (threads={threads})");

            let hist = obs.histogram("exec.item_us.s").expect("per-item latency histogram");
            assert_eq!(hist.count, 16, "one sample per work item");
            let spans = obs.spans();
            assert!(!spans.is_empty() && spans.iter().all(|s| s.cat == "exec" && s.name == "s"));
            let claimed: f64 = spans
                .iter()
                .map(|s| s.args.iter().find(|(k, _)| k == "items").map_or(0.0, |&(_, v)| v))
                .sum();
            assert_eq!(claimed as u64, 16, "worker spans account for every item");
            if threads > 1 {
                let workers: u64 = (0..threads)
                    .map(|w| obs.counter(&format!("exec.worker_items.s.w{w}")).unwrap_or(0))
                    .sum();
                assert_eq!(workers, 16, "per-worker counters account for every item");
            }
        }
    }

    #[test]
    fn disabled_obs_records_nothing_on_the_executor() {
        let exec = Executor::new(2);
        let _ = exec.try_map_n("s", 8, |i| i);
        assert!(!exec.obs().is_enabled());
        assert!(exec.obs().spans().is_empty());
        assert!(exec.obs().histogram("exec.item_us.s").is_none());
    }

    #[test]
    fn single_executor_never_spawns_pool_threads_or_worker_spans() {
        let obs = matelda_obs::Obs::enabled();
        let exec = Executor::single().with_obs(obs.clone());
        let out = exec.try_map_n("s", 64, |i| i * 3);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(exec.workers_spawned(), 0, "threads=1 must not start a pool thread");
        // Exactly the inline span — no worker lanes (tid >= 1).
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans.iter().all(|s| s.tid == 0), "no worker span may exist at threads=1");
    }

    #[test]
    fn pool_threads_spawn_lazily_and_are_shared_by_clones() {
        let exec = Executor::new(3);
        assert_eq!(exec.workers_spawned(), 0, "construction must not spawn");
        // Inline maps (small n, or an opted-in threshold) still spawn nothing.
        let _ = exec.map_n(1, |i| i);
        let _ = exec.clone().with_inline_threshold(64).map_n(100, |i| i);
        assert_eq!(exec.workers_spawned(), 0, "inline maps must not wake the pool");
        // The first parallel map spawns threads−1 workers (the caller is
        // participant 0) — and a clone reuses them rather than spawning.
        let out = exec.map_n(100, |i| i + 1);
        assert_eq!(out[99], 100);
        assert_eq!(exec.workers_spawned(), 2);
        let clone = exec.clone();
        let _ = clone.map_n(100, |i| i);
        assert_eq!(clone.workers_spawned(), 2, "clones share the run's pool");
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        let exec = Executor::new(4);
        let inner = exec.clone();
        let out = exec.map_n(8, |i| inner.map_n(4, |j| i * 10 + j).into_iter().sum::<usize>());
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn workers_survive_item_panics_and_serve_later_maps() {
        let _armed = faultpoint::arm(Vec::new()); // silence hook + exclusivity
        let exec = Executor::new(2);
        let out = exec.try_map_n("first", 8, |i| {
            if i == 5 {
                panic!("item 5 dies");
            }
            i
        });
        assert!(out[5].is_err() && out.iter().filter(|r| r.is_ok()).count() == 7);
        let spawned = exec.workers_spawned();
        assert_eq!(spawned, 1);
        // The same long-lived worker serves the next "stage" correctly.
        let again = exec.try_map_n("second", 8, |i| i * 2);
        assert!(again.iter().enumerate().all(|(i, r)| *r.as_ref().unwrap() == i * 2));
        assert_eq!(exec.workers_spawned(), spawned, "no worker died or respawned");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        // Satellite: pool-scheduled `try_map` is bit-identical to the
        // serial path at 1/2/4/8 threads under injected faultpoint
        // panics — faults included, in index order.
        #[test]
        fn pool_try_map_bit_identical_across_threads_under_injection(
            n in 1usize..48,
            fault_at in proptest::collection::vec(0usize..48, 0..6),
        ) {
            let points: Vec<(String, usize)> =
                fault_at.iter().map(|&i| ("prop".to_string(), i)).collect();
            let _armed = faultpoint::arm(points);
            let work = |i: usize| {
                faultpoint::hit("prop", i);
                (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7
            };
            let base = Executor::single().try_map_n("prop", n, work);
            for threads in [2usize, 4, 8] {
                let out = Executor::new(threads).try_map_n("prop", n, work);
                proptest::prop_assert_eq!(&out, &base);
            }
        }
    }
}
