//! # matelda-exec
//!
//! The deterministic parallel substrate of the staged pipeline engine:
//!
//! * [`Executor`] — a scoped-thread ordered map over an index space. Work
//!   is claimed dynamically (atomic counter) for balance, but results are
//!   always merged **in index order**, so output is bit-identical at any
//!   thread count. Built on `std::thread::scope` only — no dependencies,
//!   per the workspace crate policy.
//! * [`RunReport`] / [`StageReport`] — per-stage wall time plus work
//!   counters, threaded through every stage of a pipeline run and
//!   rendered as aligned text or JSON.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A deterministic parallel executor.
///
/// The contract: `map_n(n, f)` returns `[f(0), f(1), …, f(n-1)]` — the
/// same vector at every thread count. `f` runs concurrently across
/// threads, so it must not rely on call order; every stochastic stage in
/// the workspace derives a per-index seed instead.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(0)
    }
}

impl Executor {
    /// Creates an executor with `threads` worker threads; `0` means the
    /// host's available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Executor { threads }
    }

    /// A single-threaded executor (runs everything inline).
    pub fn single() -> Self {
        Executor { threads: 1 }
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n`, merging results in index order.
    pub fn map_n<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            mine.push((i, f(i)));
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("executor worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });

        slots.into_iter().map(|s| s.expect("every index produced exactly once")).collect()
    }

    /// Maps `f` over a slice, merging results in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_n(items.len(), |i| f(i, &items[i]))
    }
}

/// Instrumentation for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// Stage name (e.g. `embed`, `quality_folds`).
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub wall_secs: f64,
    /// Work units processed (cells, tables, folds, columns — per stage).
    pub items: u64,
    /// Extra named measurements (fold counts, labels spent, …).
    pub metrics: Vec<(String, f64)>,
}

impl StageReport {
    /// Creates an empty report for `name`.
    pub fn new(name: &str) -> Self {
        StageReport { name: name.to_string(), ..Default::default() }
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Instrumentation for a whole pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Executor thread count the run used.
    pub threads: usize,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
}

impl RunReport {
    /// Creates an empty report for a run at `threads` threads.
    pub fn new(threads: usize) -> Self {
        RunReport { threads, stages: Vec::new() }
    }

    /// Total wall time across stages.
    pub fn total_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_secs).sum()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Times `f`, records it as stage `name`, and returns its output.
    /// The closure receives a handle to annotate items/metrics.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce(&mut StageReport) -> R) -> R {
        let mut stage = StageReport::new(name);
        let start = Instant::now();
        let out = f(&mut stage);
        stage.wall_secs = start.elapsed().as_secs_f64();
        self.stages.push(stage);
        out
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>10}  metrics ({} thread{})\n",
            "stage",
            "wall",
            "items",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        ));
        for s in &self.stages {
            let metrics =
                s.metrics.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ");
            out.push_str(&format!(
                "{:<16} {:>9.4}s {:>10}  {}\n",
                s.name, s.wall_secs, s.items, metrics
            ));
        }
        out.push_str(&format!("{:<16} {:>9.4}s\n", "total", self.total_secs()));
        out
    }

    /// Serializes as JSON (hand-rolled; stage names and metric keys are
    /// plain identifiers, values are finite numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"threads\":{},\"total_secs\":{:.6},\"stages\":[",
            self.threads,
            self.total_secs()
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_secs\":{:.6},\"items\":{}",
                json_escape(&s.name),
                s.wall_secs,
                s.items
            ));
            if !s.metrics.is_empty() {
                out.push_str(",\"metrics\":{");
                for (j, (k, v)) in s.metrics.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", json_escape(k), json_number(*v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// JSON-safe number formatting (no NaN/Inf in JSON).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_n_is_ordered_and_complete() {
        for threads in [1, 2, 4, 7] {
            let exec = Executor::new(threads);
            let out = exec.map_n(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_results_identical_across_thread_counts() {
        let items: Vec<usize> = (0..57).collect();
        let expensive = |_, &x: &usize| {
            // Uneven work to exercise dynamic claiming.
            (0..(x % 7) * 1000).fold(x as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        };
        let base = Executor::single().map(&items, expensive);
        for threads in [2, 3, 4, 8] {
            assert_eq!(Executor::new(threads).map(&items, expensive), base);
        }
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::single().threads(), 1);
    }

    #[test]
    fn empty_and_singleton_maps() {
        let exec = Executor::new(4);
        assert!(exec.map_n(0, |i| i).is_empty());
        assert_eq!(exec.map_n(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn report_records_and_renders() {
        let mut report = RunReport::new(2);
        let out = report.time("embed", |s| {
            s.items = 5;
            s.metrics.push(("dims".into(), 128.0));
            "done"
        });
        assert_eq!(out, "done");
        report.time("train", |s| s.items = 33);
        assert_eq!(report.stages.len(), 2);
        assert!(report.stage("embed").expect("exists").wall_secs >= 0.0);
        assert_eq!(report.stage("embed").expect("exists").metric("dims"), Some(128.0));
        let text = report.render();
        assert!(text.contains("embed") && text.contains("train") && text.contains("total"));
        let json = report.to_json();
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"name\":\"embed\""));
        assert!(json.contains("\"dims\":128"));
    }

    #[test]
    fn json_number_formats() {
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(0.5), "0.500000");
        assert_eq!(json_number(f64::NAN), "null");
    }
}
