//! The persistent work-stealing pool behind [`crate::Executor`].
//!
//! One [`Pool`] lives for a whole pipeline run (the engine builds one per
//! run and threads it through every stage via `StageContext`), replacing
//! the per-map `std::thread::scope` spawn/join of earlier revisions.
//! Design points:
//!
//! * **Lazy workers.** No thread is spawned at construction; the first
//!   parallel map spawns `threads − 1` workers (the *caller* is always
//!   participant 0, so `--threads 1` never starts a pool thread at all).
//! * **Chunked range deques with stealing.** A map over `0..n` is split
//!   into one contiguous region per participant. Owners claim chunks from
//!   the front of their region, thieves from the back of someone else's —
//!   each claim is a single CAS on a packed `(head, tail)` word, instead
//!   of one `fetch_add` per item. Scheduling is dynamic; *results are
//!   not*: the caller merges in index order, so output is bit-identical
//!   at every thread count.
//! * **Fault isolation on long-lived workers.** Work items run under
//!   `catch_unwind` *inside* the submitted task (see `Executor::try_map`),
//!   and the pool additionally catches panics that escape a participant's
//!   task body, re-raising them on the caller after the join barrier — a
//!   worker thread never unwinds, so it keeps serving later stages after
//!   an item panic.
//! * **Clean shutdown, bounded.** Dropping the pool (the last `Executor`
//!   clone) flags shutdown, wakes every worker and joins them — but only
//!   until a join deadline ([`Pool::set_join_deadline`]). A worker that
//!   refuses to exit (wedged in foreign code, a runaway loop) is
//!   *detached* instead of hanging the drop forever, and the leak is
//!   reported through the attached [`Obs`] handle by thread name
//!   (`pool.leak` event + `exec.pool.leaked_workers` counter), so a
//!   long-lived host (the serve daemon) can shut down on time and still
//!   tell operators exactly which thread it abandoned.
//!
//! Safety: `run` publishes a borrowed task closure to the workers through
//! a type-erased pointer. The lifetime transmute is sound because `run`
//! returns only after every participant has checked back in — no worker
//! can touch the closure (or anything it borrows) once `run` returns.

use matelda_obs::{Obs, Val};
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The faultpoint a wedged-worker regression test arms (index = worker
/// id): the armed worker sleeps through shutdown instead of exiting
/// promptly, modelling a thread stuck in foreign code. Production never
/// arms it.
pub const WEDGE_FAULTPOINT: &str = "pool:wedge";

/// How long a wedged worker sleeps when [`WEDGE_FAULTPOINT`] is armed —
/// far beyond any test join deadline, far below anything that would
/// stall a test binary's process exit (detached threads don't block it).
const WEDGE_SLEEP: Duration = Duration::from_secs(5);

/// Default drop-time join deadline. Generous: healthy workers exit in
/// microseconds, so hitting this at all means a worker is truly wedged.
const DEFAULT_JOIN_DEADLINE: Duration = Duration::from_secs(2);

thread_local! {
    /// Set while a thread (worker *or* caller) executes a pool task.
    /// `Executor` consults it to run nested maps inline — a work item
    /// that itself maps over the same pool must not wait for workers
    /// that are busy running *it* (and nesting would oversubscribe the
    /// host anyway).
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside a pool task (any pool).
pub(crate) fn in_pool_task() -> bool {
    IN_POOL_TASK.with(Cell::get)
}

/// RAII task marker: restores the previous flag even on unwind.
struct TaskFlag {
    prev: bool,
}

impl TaskFlag {
    fn enter() -> Self {
        TaskFlag { prev: IN_POOL_TASK.with(|c| c.replace(true)) }
    }
}

impl Drop for TaskFlag {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL_TASK.with(|c| c.set(prev));
    }
}

/// Type-erased pointer to the caller's borrowed task closure. Valid only
/// between job publication and the last participant check-in; workers
/// never hold it across jobs.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and outlives every dereference — `Pool::run` joins all participants
// before returning, and only participants of the current job dereference.
unsafe impl Send for TaskRef {}

/// Coordination state behind the pool's mutex.
struct PoolState {
    /// Bumped once per job; workers compare against their last-seen value.
    seq: u64,
    /// The published task of the in-flight job, if any.
    task: Option<TaskRef>,
    /// Worker ids `1..participants` take part in the in-flight job.
    participants: usize,
    /// Worker participants that have not checked back in yet.
    remaining: usize,
    /// First panic payload that escaped a participant's task body.
    panic: Option<Box<dyn Any + Send>>,
    /// Set by `Drop`; workers exit their loop.
    shutdown: bool,
    /// Workers that have observed shutdown and left their loop. `Drop`
    /// waits (bounded) for this to reach the spawned count before
    /// joining — a wedged worker keeps the count short and is detached.
    exited: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new job (or shutdown).
    work: Condvar,
    /// The caller waits here for the last participant check-in.
    done: Condvar,
}

/// A persistent work-stealing thread pool. See the module docs.
pub struct Pool {
    /// Pool-thread budget: `threads − 1` (participant 0 is the caller).
    workers: usize,
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// How many pool threads have actually been spawned (0 until the
    /// first parallel map; the lazy-startup contract is observable).
    spawned: AtomicUsize,
    /// Serializes `run` calls from concurrent `Executor` clones.
    run_lock: Mutex<()>,
    /// Drop-time join deadline, milliseconds (see [`Pool::set_join_deadline`]).
    join_deadline_ms: AtomicU64,
    /// Telemetry sink for shutdown leak reports. Attached after
    /// construction (the pool is shared through an `Arc`), hence the
    /// interior mutex; the handle itself is a cheap clone.
    obs: Mutex<Obs>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .finish()
    }
}

impl Pool {
    /// A pool that will lazily spawn `threads − 1` worker threads. With
    /// `threads <= 1` it never spawns anything.
    pub fn new(threads: usize) -> Self {
        Pool {
            workers: threads.saturating_sub(1),
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    seq: 0,
                    task: None,
                    participants: 0,
                    remaining: 0,
                    panic: None,
                    shutdown: false,
                    exited: 0,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
            run_lock: Mutex::new(()),
            join_deadline_ms: AtomicU64::new(DEFAULT_JOIN_DEADLINE.as_millis() as u64),
            obs: Mutex::new(Obs::disabled()),
        }
    }

    /// Number of pool threads actually started so far.
    pub fn workers_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Bounds how long `Drop` waits for workers to exit before detaching
    /// the stragglers and reporting them as leaks. A wedged worker can
    /// delay shutdown by at most this much — it can never hang it.
    pub fn set_join_deadline(&self, deadline: Duration) {
        self.join_deadline_ms.store(deadline.as_millis() as u64, Ordering::Relaxed);
    }

    /// Attaches the telemetry handle shutdown leak reports go to. The
    /// pool records nothing else — per-map tracing lives on the
    /// `Executor` — so a disabled handle (the default) costs nothing.
    pub fn attach_obs(&self, obs: &Obs) {
        *self.obs.lock().unwrap_or_else(PoisonError::into_inner) = obs.clone();
    }

    /// Spawns the worker threads on first use.
    fn ensure_spawned(&self) {
        if self.workers == 0 || self.spawned.load(Ordering::Acquire) > 0 {
            return;
        }
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        if !handles.is_empty() {
            return;
        }
        for id in 1..=self.workers {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("matelda-pool-{id}"))
                .spawn(move || worker_loop(&shared, id))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        self.spawned.store(self.workers, Ordering::Release);
    }

    /// Runs `task(pid)` once per participant `pid` in `0..participants`:
    /// participant 0 on the calling thread, the rest on pool workers.
    /// Returns after *every* participant has finished — the task may
    /// borrow locals. Panics escaping any participant are re-raised here
    /// (caller's own panic takes precedence); pool workers survive.
    ///
    /// `participants` must be in `2..=threads` (below 2 there is nothing
    /// to schedule — callers take their inline path instead).
    pub fn run(&self, participants: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(participants >= 2, "single-participant jobs run inline");
        debug_assert!(participants <= self.workers + 1, "participants exceed pool width");
        debug_assert!(!in_pool_task(), "Pool::run is not re-entrant from a pool task");
        self.ensure_spawned();
        // SAFETY: only erases the lifetime; see module docs — the join
        // barrier below outlives every dereference.
        let task_ref = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task)
        });

        let _serial = self.run_lock.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            debug_assert!(state.task.is_none(), "a job is already in flight");
            state.seq += 1;
            state.task = Some(task_ref);
            state.participants = participants;
            state.remaining = participants - 1;
            state.panic = None;
        }
        self.shared.work.notify_all();

        // Participant 0: the caller works too, so `threads = 2` costs one
        // pool thread and a 1-thread run costs none.
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            let _flag = TaskFlag::enter();
            task(0);
        }));

        let worker_panic = {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            while state.remaining > 0 {
                state = self.shared.done.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            state.task = None;
            state.panic.take()
        };
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // Wait — bounded — for every worker to acknowledge shutdown.
        // Workers bump `exited` on their way out; a wedged one keeps the
        // count short until the deadline expires.
        let spawned = self.spawned.load(Ordering::Acquire);
        let deadline =
            Instant::now() + Duration::from_millis(self.join_deadline_ms.load(Ordering::Relaxed));
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            while state.exited < spawned {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (next, _timed_out) = self
                    .shared
                    .done
                    .wait_timeout(state, left)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        }
        let obs = self.obs.get_mut().unwrap_or_else(PoisonError::into_inner).clone();
        let mut leaked = 0u64;
        for handle in self.handles.get_mut().unwrap_or_else(PoisonError::into_inner).drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                // Past the deadline and still running: detach instead of
                // hanging shutdown, and name the thread we abandoned.
                leaked += 1;
                let name = handle.thread().name().unwrap_or("<unnamed>").to_owned();
                obs.event("pool.leak", &[("worker", Val::S(&name))]);
            }
        }
        if leaked > 0 {
            obs.counter_add("exec.pool.leaked_workers", leaked);
        }
    }
}

/// The worker body: wait for a job, run the task if participating, check
/// back in, repeat until shutdown. Panics from the task are stored for
/// the caller — the loop itself never unwinds, which is what lets one
/// worker serve every stage of a run (and survive item panics).
fn worker_loop(shared: &Shared, id: usize) {
    let mut last_seen = 0u64;
    let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if state.shutdown {
            drop(state);
            // Test hook: a "wedged" worker stalls past any reasonable join
            // deadline so the bounded-drop path can be exercised.
            if crate::faultpoint::is_armed(WEDGE_FAULTPOINT, id) {
                std::thread::sleep(WEDGE_SLEEP);
            }
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.exited += 1;
            shared.done.notify_all();
            return;
        }
        if state.seq != last_seen {
            last_seen = state.seq;
            if id < state.participants {
                let task = state.task.expect("published job has a task");
                drop(state);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _flag = TaskFlag::enter();
                    // SAFETY: the caller blocks in `run` until this
                    // participant checks in below.
                    unsafe { (*task.0)(id) }
                }));
                state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(payload) = result {
                    state.panic.get_or_insert(payload);
                }
                state.remaining -= 1;
                if state.remaining == 0 {
                    shared.done.notify_one();
                }
                continue;
            }
        }
        state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Per-participant chunked range deques over an index space `0..n`.
///
/// Each participant owns one contiguous region, packed into an
/// `AtomicU64` as `(head << 32) | tail`. The owner claims `chunk`-sized
/// runs from the front ([`Ranges::claim`] pops its own region first);
/// when its region drains it steals from the *back* of the next
/// non-empty region. Every index is claimed exactly once, whole chunks
/// at a time — one CAS per chunk instead of one `fetch_add` per item.
pub(crate) struct Ranges {
    regions: Vec<AtomicU64>,
    chunk: usize,
}

/// Aiming for ~8 chunks per participant keeps claims coarse while
/// leaving enough granularity for stealing to rebalance skewed items.
const CHUNKS_PER_PARTICIPANT: usize = 8;

/// Chunks never exceed this many items, so late-discovered imbalance
/// (one huge item at the end of a region) stays stealable.
const MAX_CHUNK: usize = 1024;

fn pack(head: usize, tail: usize) -> u64 {
    ((head as u64) << 32) | tail as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xFFFF_FFFF) as usize)
}

impl Ranges {
    /// Splits `0..n` into `participants` near-equal contiguous regions.
    pub(crate) fn new(n: usize, participants: usize) -> Self {
        debug_assert!(n <= u32::MAX as usize, "index space exceeds packed range width");
        let chunk = (n / (participants * CHUNKS_PER_PARTICIPANT).max(1)).clamp(1, MAX_CHUNK);
        let per = n / participants;
        let extra = n % participants;
        let mut regions = Vec::with_capacity(participants);
        let mut start = 0usize;
        for p in 0..participants {
            let len = per + usize::from(p < extra);
            regions.push(AtomicU64::new(pack(start, start + len)));
            start += len;
        }
        debug_assert_eq!(start, n);
        Ranges { regions, chunk }
    }

    /// Claims the next chunk for participant `me`: front of its own
    /// region, else stolen from the back of another. `None` means the
    /// whole index space is exhausted (work never re-appears, so one
    /// failed sweep over all regions is conclusive). The `bool` is
    /// `true` when the chunk was stolen.
    pub(crate) fn claim(&self, me: usize) -> Option<(Range<usize>, bool)> {
        if let Some(range) = Self::pop_front(&self.regions[me], self.chunk) {
            return Some((range, false));
        }
        let parts = self.regions.len();
        for offset in 1..parts {
            let victim = (me + offset) % parts;
            if let Some(range) = Self::pop_back(&self.regions[victim], self.chunk) {
                return Some((range, true));
            }
        }
        None
    }

    fn pop_front(region: &AtomicU64, chunk: usize) -> Option<Range<usize>> {
        let mut word = region.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(word);
            if head >= tail {
                return None;
            }
            let new_head = (head + chunk).min(tail);
            match region.compare_exchange_weak(
                word,
                pack(new_head, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head..new_head),
                Err(cur) => word = cur,
            }
        }
    }

    fn pop_back(region: &AtomicU64, chunk: usize) -> Option<Range<usize>> {
        let mut word = region.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(word);
            if head >= tail {
                return None;
            }
            let new_tail = tail.saturating_sub(chunk).max(head);
            match region.compare_exchange_weak(
                word,
                pack(head, new_tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(new_tail..tail),
                Err(cur) => word = cur,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_obs::OwnedVal;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_cover_every_index_exactly_once_serially() {
        for (n, parts) in [(0usize, 2usize), (1, 2), (7, 3), (100, 4), (1025, 2)] {
            let ranges = Ranges::new(n, parts);
            let mut seen = BTreeSet::new();
            for me in 0..parts {
                while let Some((range, _)) = ranges.claim(me) {
                    for i in range {
                        assert!(seen.insert(i), "index {i} claimed twice (n={n} parts={parts})");
                    }
                }
            }
            assert_eq!(seen.len(), n, "n={n} parts={parts}");
        }
    }

    #[test]
    fn a_thief_drains_a_region_its_owner_never_touches() {
        let ranges = Ranges::new(64, 2);
        let mut count = 0;
        let mut stole = false;
        // Participant 0 claims everything; region 1's items arrive stolen.
        while let Some((range, stolen)) = ranges.claim(0) {
            count += range.len();
            stole |= stolen;
        }
        assert_eq!(count, 64);
        assert!(stole, "second region must be reached by stealing");
    }

    #[test]
    fn pool_runs_all_participants_and_survives_panics() {
        let pool = Pool::new(3);
        assert_eq!(pool.workers_spawned(), 0, "workers must be lazy");
        let hits = Mutex::new(Vec::new());
        pool.run(3, &|pid| {
            hits.lock().unwrap().push(pid);
        });
        assert_eq!(pool.workers_spawned(), 2);
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);

        // A panic escaping a worker participant re-raises on the caller…
        let escaped = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|pid| {
                if pid == 1 {
                    panic!("escaped task panic");
                }
            });
        }));
        assert!(escaped.is_err());
        // …and the worker keeps serving jobs afterwards.
        let count = AtomicUsize::new(0);
        pool.run(3, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert_eq!(pool.workers_spawned(), 2, "no respawn after an item panic");
    }

    #[test]
    fn single_thread_pool_never_spawns() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers_spawned(), 0);
        drop(pool); // clean shutdown with nothing to join
    }

    #[test]
    fn clean_shutdown_reports_no_leaked_workers() {
        let _guard = crate::faultpoint::quiesce();
        let obs = Obs::enabled();
        let pool = Pool::new(3);
        pool.attach_obs(&obs);
        pool.run(3, &|_| {});
        assert_eq!(pool.workers_spawned(), 2);
        drop(pool);
        assert_eq!(obs.counter("exec.pool.leaked_workers"), None);
        assert!(obs.events_named("pool.leak").is_empty());
    }

    #[test]
    fn wedged_worker_is_detached_and_reported_instead_of_hanging_drop() {
        let _guard = crate::faultpoint::arm([(WEDGE_FAULTPOINT.to_owned(), 1)]);
        let obs = Obs::enabled();
        let pool = Pool::new(2);
        pool.attach_obs(&obs);
        pool.set_join_deadline(Duration::from_millis(100));
        pool.run(2, &|_| {});
        assert_eq!(pool.workers_spawned(), 1);
        let started = Instant::now();
        drop(pool);
        let elapsed = started.elapsed();
        assert!(
            elapsed < WEDGE_SLEEP,
            "drop must return before the wedged worker wakes (took {elapsed:?})"
        );
        assert_eq!(obs.counter("exec.pool.leaked_workers"), Some(1));
        let leaks = obs.events_named("pool.leak");
        assert_eq!(leaks.len(), 1);
        assert!(
            leaks[0]
                .fields
                .iter()
                .any(|(k, v)| k == "worker" && matches!(v, OwnedVal::S(n) if n == "matelda-pool-1")),
            "leak event must name the abandoned thread: {:?}",
            leaks[0].fields
        );
    }
}
