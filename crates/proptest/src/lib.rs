//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this implements the
//! subset of proptest the workspace's property tests use: composable
//! generation strategies (ranges, simple character-class string patterns,
//! tuples, vectors, `prop_map` / `prop_flat_map`) driven by the
//! [`proptest!`] macro. There is no shrinking — a failing case panics
//! with the generated inputs in the assertion message, which the
//! deterministic per-case seeding makes reproducible.

use std::ops::Range;

/// Deterministic generator used by the test driver (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String strategies from simplified regex patterns of the form
/// `[class]{lo,hi}` (a character class repeated a bounded number of
/// times) — the only pattern shape the workspace's tests use. The class
/// supports literal characters and `a-z` ranges.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi). Panics on patterns
/// outside the supported shape, so unsupported tests fail loudly.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: expected [class]{{lo,hi}}"));
    let (class, rest) = inner;
    let (lo, hi) = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .and_then(|r| r.split_once(','))
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(a <= b, "bad class range in {pattern:?}");
            alphabet.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, lo, hi)
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a range of sizes.
    pub trait IntoSize: Clone {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import the tests expect.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Runs each contained `#[test]` function over many generated cases.
///
/// Supports the subset of the real macro's grammar the workspace uses:
/// an optional `#![proptest_config(...)]` header and test functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // Distinct deterministic stream per test and case.
                    let mut rng = $crate::TestRng::new(
                        0x5EED_0000u64
                            .wrapping_add(case.wrapping_mul(0x9E37_79B9))
                            ^ (stringify!($name).len() as u64) << 32,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parsing_covers_used_classes() {
        let (alpha, lo, hi) = parse_pattern("[a-z]{0,10}");
        assert_eq!(alpha.len(), 26);
        assert_eq!((lo, hi), (0, 10));
        let (alpha, lo, hi) = parse_pattern("[ -~]{0,12}");
        assert_eq!(alpha.len(), 95); // all printable ASCII
        assert_eq!((lo, hi), (0, 12));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn composite_strategies_compose() {
        let strat = (1usize..4, 0u64..10).prop_flat_map(|(n, base)| {
            collection::vec(0usize..100, n).prop_map(move |v| (base, v))
        });
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let (base, v) = strat.generate(&mut rng);
            assert!(base < 10);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_drives_generated_args(x in 0usize..50, s in "[a-b]{1,3}") {
            prop_assert!(x < 50);
            prop_assert!(!s.is_empty());
        }
    }
}
