//! Levelwise multi-attribute FD discovery (TANE-style; Huhtala et al.
//! 1999), the deeper cousin of the unary mining in [`crate::mine`].
//!
//! The paper's pipeline only *consumes* unary FDs (Raha's detectors,
//! BART's injection targets, Matelda's structural features), but its
//! benchmark creation runs HyFD, which discovers **minimal FDs with
//! composite left-hand sides**. This module supplies that capability:
//!
//! * stripped-partition *products* (`π_{X∪Y} = π_X · π_Y`) computed with
//!   the classic probe-table trick,
//! * levelwise lattice search with the standard pruning rules
//!   (rhs-candidate sets, key pruning),
//! * minimality: `X → a` is only emitted if no proper subset of `X`
//!   determines `a`.
//!
//! Complexity is exponential in the worst case like every FD miner; the
//! `max_lhs` bound keeps it practical (the paper's HyFD runs were bounded
//! by table size too — they dropped tables over 4 MB).

use crate::partition::Partition;
use matelda_table::Table;
use std::collections::{HashMap, HashSet};

/// A (possibly composite) functional dependency `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompositeFd {
    /// Determining attribute set, sorted ascending.
    pub lhs: Vec<usize>,
    /// Determined attribute.
    pub rhs: usize,
}

/// Product of two stripped partitions: the partition of the combined
/// attribute set. Implemented with the probe-table algorithm: for each
/// group of `a`, split members by their group id in `b`.
pub fn partition_product(a: &Partition, b: &Partition, n_rows: usize) -> Partition {
    // Row -> group id in b (usize::MAX = singleton / stripped).
    let mut group_of_b = vec![usize::MAX; n_rows];
    for (gid, group) in b.groups.iter().enumerate() {
        for &r in group {
            group_of_b[r] = gid;
        }
    }
    let mut groups = Vec::new();
    for group in &a.groups {
        let mut split: HashMap<usize, Vec<usize>> = HashMap::new();
        for &r in group {
            let gb = group_of_b[r];
            if gb != usize::MAX {
                split.entry(gb).or_default().push(r);
            }
        }
        for (_, members) in split {
            if members.len() >= 2 {
                groups.push(members);
            }
        }
    }
    groups.iter_mut().for_each(|g| g.sort_unstable());
    groups.sort_by_key(|g| g[0]);
    Partition { groups, n_rows }
}

/// `true` iff `lhs_partition` refines column `rhs`: every group of the
/// LHS partition is constant in the RHS column.
fn refines(lhs_partition: &Partition, table: &Table, rhs: usize) -> bool {
    let values = &table.columns[rhs].values;
    lhs_partition.groups.iter().all(|group| {
        let first = &values[group[0]];
        group.iter().all(|&r| &values[r] == first)
    })
}

/// Mines all *minimal* exact FDs with LHS size `1..=max_lhs` on `table`.
/// Results are sorted for determinism.
pub fn mine_composite(table: &Table, max_lhs: usize) -> Vec<CompositeFd> {
    let m = table.n_cols();
    let n = table.n_rows();
    if m < 2 || n == 0 {
        return Vec::new();
    }

    let singles: Vec<Partition> = (0..m).map(|c| Partition::of_column(table, c)).collect();
    let mut results: Vec<CompositeFd> = Vec::new();
    // Attribute sets already known to determine a given rhs (for
    // minimality pruning).
    let mut determined_by: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();

    // Level 1.
    let mut current: Vec<(Vec<usize>, Partition)> = Vec::new();
    for c in 0..m {
        for rhs in 0..m {
            if rhs == c {
                continue;
            }
            if refines(&singles[c], table, rhs) {
                results.push(CompositeFd { lhs: vec![c], rhs });
                determined_by.entry(rhs).or_default().push(vec![c]);
            }
        }
        current.push((vec![c], singles[c].clone()));
    }

    // Levels 2..=max_lhs.
    for _level in 2..=max_lhs {
        let mut next: Vec<(Vec<usize>, Partition)> = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        for (lhs, part) in &current {
            // Key pruning: a key-like partition (no duplicate groups)
            // trivially determines everything; supersets add nothing.
            if part.is_key() {
                continue;
            }
            let &last = lhs.last().expect("non-empty lhs");
            for extend in (last + 1)..m {
                let mut new_lhs = lhs.clone();
                new_lhs.push(extend);
                if !seen.insert(new_lhs.clone()) {
                    continue;
                }
                let product = partition_product(part, &singles[extend], n);
                for rhs in 0..m {
                    if new_lhs.contains(&rhs) {
                        continue;
                    }
                    // Minimality: skip if a subset already determines rhs.
                    let minimal = determined_by
                        .get(&rhs)
                        .is_none_or(|subs| !subs.iter().any(|s| is_subset(s, &new_lhs)));
                    if minimal && refines(&product, table, rhs) {
                        results.push(CompositeFd { lhs: new_lhs.clone(), rhs });
                        determined_by.entry(rhs).or_default().push(new_lhs.clone());
                    }
                }
                next.push((new_lhs, product));
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }

    results.sort();
    results
}

fn is_subset(small: &[usize], big: &[usize]) -> bool {
    small.iter().all(|x| big.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    /// city+street -> zip holds, but neither city nor street alone does.
    fn addresses() -> Table {
        Table::new(
            "addr",
            vec![
                Column::new("city", ["Paris", "Paris", "Lyon", "Lyon", "Paris", "Lyon"]),
                Column::new("street", ["Main", "High", "Main", "High", "Main", "Main"]),
                Column::new("zip", ["75001", "75002", "69001", "69002", "75001", "69001"]),
            ],
        )
    }

    #[test]
    fn finds_composite_fd_missed_by_unary_mining() {
        let t = addresses();
        // No unary FD determines zip.
        let unary = crate::mine::mine_approximate(&t, 0.0);
        assert!(!unary.iter().any(|fd| fd.rhs == 2), "{unary:?}");
        // The composite miner finds {city, street} -> zip.
        let fds = mine_composite(&t, 2);
        assert!(fds.contains(&CompositeFd { lhs: vec![0, 1], rhs: 2 }), "{fds:?}");
        // And zip -> city (unary, exact) appears too.
        assert!(fds.contains(&CompositeFd { lhs: vec![2], rhs: 0 }));
    }

    #[test]
    fn minimality_suppresses_redundant_supersets() {
        // id is a key: id -> everything at level 1; no {id, x} -> y may
        // be emitted.
        let t = Table::new(
            "t",
            vec![
                Column::new("id", ["1", "2", "3", "4"]),
                Column::new("a", ["x", "x", "y", "y"]),
                Column::new("b", ["p", "p", "q", "q"]),
            ],
        );
        let fds = mine_composite(&t, 3);
        for fd in &fds {
            if fd.lhs.contains(&0) {
                assert_eq!(fd.lhs, vec![0], "non-minimal LHS {fd:?}");
            }
        }
        // a <-> b at level 1.
        assert!(fds.contains(&CompositeFd { lhs: vec![1], rhs: 2 }));
        assert!(fds.contains(&CompositeFd { lhs: vec![2], rhs: 1 }));
    }

    #[test]
    fn partition_product_matches_direct_grouping() {
        let t = addresses();
        let pa = Partition::of_column(&t, 0);
        let pb = Partition::of_column(&t, 1);
        let product = partition_product(&pa, &pb, t.n_rows());
        // Direct computation: group rows by (city, street).
        let combined: Vec<String> =
            (0..t.n_rows()).map(|r| format!("{}|{}", t.cell(r, 0), t.cell(r, 1))).collect();
        let direct = Partition::from_values(combined.iter().map(String::as_str));
        assert_eq!(product.groups, direct.groups);
    }

    #[test]
    fn max_lhs_bounds_the_search() {
        let t = addresses();
        let level1 = mine_composite(&t, 1);
        assert!(level1.iter().all(|fd| fd.lhs.len() == 1));
        let level2 = mine_composite(&t, 2);
        assert!(level2.len() > level1.len());
    }

    #[test]
    fn degenerate_tables() {
        let empty = Table::new("e", vec![]);
        assert!(mine_composite(&empty, 2).is_empty());
        let one_col = Table::new("o", vec![Column::new("a", ["1", "1"])]);
        assert!(mine_composite(&one_col, 2).is_empty());
    }
}
