//! # matelda-fd
//!
//! Functional-dependency substrate: stripped partitions, unary FD mining
//! and per-cell violation marking.
//!
//! Three parts of the reproduction need FDs:
//!
//! * Matelda's **rule-violation detectors** (paper §3.3.1): three
//!   structural candidate FDs per column (`a₀→aⱼ`, `aⱼ₋₁→aⱼ`, `aⱼ→aⱼ₊₁`)
//!   plus the aggregated `nv_LHS`/`nv_RHS` violation frequencies over all
//!   unary rules (Eq. 6);
//! * the **Raha baseline**, which checks all unary FDs of a table;
//! * the **error generator**, which (like the paper's BART + HyFD setup)
//!   mines FDs that hold on the clean data and injects violations into
//!   them.
//!
//! The paper only ever needs *unary* (single-attribute LHS) dependencies,
//! so mining is partition-refinement over column pairs rather than a full
//! HyFD lattice search — see DESIGN.md's substitution table.

pub mod mine;
pub mod partition;
pub mod tane;
pub mod violation;

pub use mine::{mine_approximate, mine_exact_injectable, Fd};
pub use partition::Partition;
pub use tane::{mine_composite, CompositeFd};
pub use violation::{violating_rows, violation_stats, ViolationStats};
