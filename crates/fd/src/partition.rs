//! Stripped partitions: the classic FD-mining representation of a column
//! (TANE / HyFD). A partition groups row indices by cell value and keeps
//! only groups of size ≥ 2 — singleton groups can never witness or violate
//! a unary FD.

use matelda_table::Table;
use std::collections::HashMap;

/// The stripped partition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Row-index groups (size ≥ 2), each sorted ascending; groups sorted by
    /// first member for determinism.
    pub groups: Vec<Vec<usize>>,
    /// Total number of rows in the column the partition was built from.
    pub n_rows: usize,
}

impl Partition {
    /// Builds the stripped partition of column `col` of `table`.
    pub fn of_column(table: &Table, col: usize) -> Self {
        Self::from_values(table.columns[col].values.iter().map(String::as_str))
    }

    /// Builds a stripped partition from raw values.
    pub fn from_values<'a>(values: impl Iterator<Item = &'a str>) -> Self {
        let mut by_value: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut n_rows = 0;
        for (i, v) in values.enumerate() {
            by_value.entry(v).or_default().push(i);
            n_rows += 1;
        }
        let mut groups: Vec<Vec<usize>> = by_value.into_values().filter(|g| g.len() >= 2).collect();
        groups.sort_by_key(|g| g[0]);
        Self { groups, n_rows }
    }

    /// Number of non-singleton groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// `true` if every value is unique (a key column).
    pub fn is_key(&self) -> bool {
        self.groups.is_empty()
    }

    /// Rows covered by non-singleton groups.
    pub fn covered_rows(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("club", ["Real", "Real", "City", "City", "Ajax"]),
                Column::new("id", ["1", "2", "3", "4", "5"]),
            ],
        )
    }

    #[test]
    fn groups_rows_by_value() {
        let p = Partition::of_column(&table(), 0);
        assert_eq!(p.n_rows, 5);
        assert_eq!(p.groups, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.covered_rows(), 4);
        assert!(!p.is_key());
    }

    #[test]
    fn key_column_has_empty_partition() {
        let p = Partition::of_column(&table(), 1);
        assert!(p.is_key());
        assert_eq!(p.n_groups(), 0);
        assert_eq!(p.covered_rows(), 0);
    }

    #[test]
    fn empty_column() {
        let p = Partition::from_values(std::iter::empty());
        assert_eq!(p.n_rows, 0);
        assert!(p.is_key());
    }

    #[test]
    fn all_identical_single_group() {
        let p = Partition::from_values(["x", "x", "x"].into_iter());
        assert_eq!(p.groups, vec![vec![0, 1, 2]]);
    }
}
