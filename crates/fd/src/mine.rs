//! Unary FD mining over column pairs (the HyFD substitute — see crate
//! docs: the paper only consumes single-attribute-LHS dependencies).

use crate::partition::Partition;
use crate::violation::violation_stats;
use matelda_table::Table;

/// A unary functional dependency `lhs → rhs` (column indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Determining column.
    pub lhs: usize,
    /// Determined column.
    pub rhs: usize,
}

impl Fd {
    /// Convenience constructor.
    pub fn new(lhs: usize, rhs: usize) -> Self {
        Self { lhs, rhs }
    }
}

/// Mines all unary FDs whose g3 error on `table` is at most `max_error`.
/// `max_error = 0.0` yields exact dependencies. Results are sorted.
///
/// Key columns (all-distinct LHS) trivially satisfy every FD; they are
/// *included* — the `nv` features of the paper normalize by "#rules where
/// col j appears on (L/R)HS", and trivially satisfied rules are rules.
pub fn mine_approximate(table: &Table, max_error: f64) -> Vec<Fd> {
    let m = table.n_cols();
    let mut out = Vec::new();
    for lhs in 0..m {
        for rhs in 0..m {
            if lhs == rhs {
                continue;
            }
            if violation_stats(table, lhs, rhs).g3_error <= max_error {
                out.push(Fd::new(lhs, rhs));
            }
        }
    }
    out
}

/// Mines exact unary FDs into which a violation can actually be injected:
/// the LHS must have at least one duplicated value (group of size ≥ 2),
/// otherwise perturbing an RHS cell cannot create a detectable
/// inconsistency. This mirrors the paper's benchmark pipeline (HyFD
/// discovery + BART injection "on both sides of a functional dependency").
pub fn mine_exact_injectable(table: &Table) -> Vec<Fd> {
    let m = table.n_cols();
    let partitions: Vec<Partition> = (0..m).map(|c| Partition::of_column(table, c)).collect();
    let mut out = Vec::new();
    for lhs in 0..m {
        if partitions[lhs].is_key() {
            continue; // no duplicated LHS values -> nothing to violate
        }
        for rhs in 0..m {
            if lhs == rhs {
                continue;
            }
            if violation_stats(table, lhs, rhs).g3_error == 0.0 {
                out.push(Fd::new(lhs, rhs));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    fn cities() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("id", ["1", "2", "3", "4"]),
                Column::new("city", ["Paris", "Paris", "Berlin", "Rome"]),
                Column::new("country", ["France", "France", "Germany", "Italy"]),
            ],
        )
    }

    #[test]
    fn exact_mining_finds_city_country() {
        let fds = mine_approximate(&cities(), 0.0);
        assert!(fds.contains(&Fd::new(1, 2)), "{fds:?}");
        assert!(fds.contains(&Fd::new(2, 1)), "country -> city also exact here");
        // id is a key: it determines everything.
        assert!(fds.contains(&Fd::new(0, 1)));
        assert!(fds.contains(&Fd::new(0, 2)));
        // city does NOT determine id (Paris maps to ids 1 and 2).
        assert!(!fds.contains(&Fd::new(1, 0)));
    }

    #[test]
    fn approximate_mining_tolerates_noise() {
        let t = Table::new(
            "t",
            vec![
                Column::new("city", ["Paris", "Paris", "Paris", "Paris", "Berlin"]),
                Column::new("country", ["France", "France", "France", "Frankreich", "Germany"]),
            ],
        );
        assert!(!mine_approximate(&t, 0.0).contains(&Fd::new(0, 1)));
        assert!(mine_approximate(&t, 0.25).contains(&Fd::new(0, 1)));
    }

    #[test]
    fn injectable_excludes_key_lhs() {
        let fds = mine_exact_injectable(&cities());
        assert!(fds.contains(&Fd::new(1, 2)));
        assert!(!fds.iter().any(|fd| fd.lhs == 0), "key LHS not injectable: {fds:?}");
    }

    #[test]
    fn single_column_table_has_no_fds() {
        let t = Table::new("t", vec![Column::new("a", ["1", "2"])]);
        assert!(mine_approximate(&t, 1.0).is_empty());
        assert!(mine_exact_injectable(&t).is_empty());
    }
}
