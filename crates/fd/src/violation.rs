//! Per-cell violation marking for a unary FD `A → B`.

use crate::partition::Partition;
use matelda_table::Table;
use std::collections::HashMap;

/// Violation summary of one candidate FD on one table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViolationStats {
    /// Rows participating in any violating LHS group (both the majority
    /// and minority rows — every tuple of an inconsistent group witnesses
    /// the violation, which is how Raha marks FD violations).
    pub violating_rows: Vec<usize>,
    /// The subset of `violating_rows` holding a *minority* RHS value in
    /// their group — the most likely culprits.
    pub minority_rows: Vec<usize>,
    /// g3-style approximation error: fraction of rows that must be removed
    /// for the FD to hold exactly (0.0 = exact FD).
    pub g3_error: f64,
}

/// Computes the violation statistics of `lhs → rhs` on `table`.
pub fn violation_stats(table: &Table, lhs: usize, rhs: usize) -> ViolationStats {
    let part = Partition::of_column(table, lhs);
    let rhs_values = &table.columns[rhs].values;
    let n = table.n_rows();
    let mut violating = Vec::new();
    let mut minority = Vec::new();
    let mut removed = 0usize;
    for group in &part.groups {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &r in group {
            *counts.entry(rhs_values[r].as_str()).or_insert(0) += 1;
        }
        if counts.len() <= 1 {
            continue;
        }
        let majority = counts.values().copied().max().expect("non-empty group");
        // Deterministic majority value: largest count, ties to the
        // lexicographically smallest value.
        let majority_value = counts
            .iter()
            .filter(|(_, c)| **c == majority)
            .map(|(v, _)| *v)
            .min()
            .expect("non-empty");
        removed += group.len() - majority;
        for &r in group {
            violating.push(r);
            if rhs_values[r] != majority_value {
                minority.push(r);
            }
        }
    }
    violating.sort_unstable();
    minority.sort_unstable();
    let g3_error = if n == 0 { 0.0 } else { removed as f64 / n as f64 };
    ViolationStats { violating_rows: violating, minority_rows: minority, g3_error }
}

/// Convenience: just the rows in violating groups of `lhs → rhs`.
pub fn violating_rows(table: &Table, lhs: usize, rhs: usize) -> Vec<usize> {
    violation_stats(table, lhs, rhs).violating_rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    /// The running example of the paper: Real Madrid appears twice, once
    /// with Country=Spain and once (wrongly) with Country=France.
    fn clubs() -> Table {
        Table::new(
            "clubs",
            vec![
                Column::new(
                    "Club Name",
                    [
                        "Manchester City",
                        "Liverpool MC",
                        "Manchester City",
                        "Real Madrid",
                        "Real Madrid",
                    ],
                ),
                Column::new("Country", ["Germany", "England", "England", "France", "Spain"]),
            ],
        )
    }

    #[test]
    fn detects_running_example_violation() {
        let stats = violation_stats(&clubs(), 0, 1);
        // Manchester City group {0,2} disagrees (Germany vs England) and
        // Real Madrid group {3,4} disagrees (France vs Spain).
        assert_eq!(stats.violating_rows, vec![0, 2, 3, 4]);
        // Within each 2-group, ties break lexicographically: "England" and
        // "France" are the deterministic majority values.
        assert_eq!(stats.minority_rows, vec![0, 4]);
        assert!((stats.g3_error - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn exact_fd_has_no_violations() {
        let t = Table::new(
            "t",
            vec![
                Column::new("city", ["Paris", "Paris", "Berlin"]),
                Column::new("country", ["France", "France", "Germany"]),
            ],
        );
        let stats = violation_stats(&t, 0, 1);
        assert!(stats.violating_rows.is_empty());
        assert_eq!(stats.g3_error, 0.0);
    }

    #[test]
    fn clear_majority_flags_only_minority() {
        let t = Table::new(
            "t",
            vec![Column::new("k", ["a", "a", "a", "a"]), Column::new("v", ["1", "1", "1", "2"])],
        );
        let stats = violation_stats(&t, 0, 1);
        assert_eq!(stats.violating_rows, vec![0, 1, 2, 3]);
        assert_eq!(stats.minority_rows, vec![3]);
        assert!((stats.g3_error - 0.25).abs() < 1e-12);
    }

    #[test]
    fn key_lhs_never_violates() {
        let t = Table::new(
            "t",
            vec![Column::new("id", ["1", "2", "3"]), Column::new("v", ["x", "x", "y"])],
        );
        assert!(violating_rows(&t, 0, 1).is_empty());
    }

    #[test]
    fn empty_table() {
        let t = Table::new(
            "t",
            vec![Column::new("a", Vec::<String>::new()), Column::new("b", Vec::<String>::new())],
        );
        let stats = violation_stats(&t, 0, 1);
        assert!(stats.violating_rows.is_empty());
        assert_eq!(stats.g3_error, 0.0);
    }
}
