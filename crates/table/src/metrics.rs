//! Cell-level evaluation: confusion counts, precision / recall / F1, and
//! per-error-type recall (paper Tables 2 & 3, Figures 3–9).

use crate::mask::CellMask;

/// Cell-level confusion counts of a prediction against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted error, is error.
    pub tp: usize,
    /// Predicted error, is clean.
    pub fp: usize,
    /// Predicted clean, is error.
    pub fn_: usize,
    /// Predicted clean, is clean.
    pub tn: usize,
}

impl Confusion {
    /// Compares a predicted error mask against the ground-truth error mask.
    ///
    /// Both masks must cover the same lake shape. Before this was
    /// asserted up front, mismatched masks either panicked deep inside
    /// `zip_with` or — had the set algebra been computed differently —
    /// could underflow `total - tp - fp - fn_` in release builds, so the
    /// shape contract is now explicit here and the count saturating.
    pub fn from_masks(predicted: &CellMask, truth: &CellMask) -> Self {
        assert_eq!(
            predicted.dims(),
            truth.dims(),
            "Confusion::from_masks: predicted and truth masks cover different lake shapes"
        );
        let tp = predicted.and(truth).count();
        let fp = predicted.minus(truth).count();
        let fn_ = truth.minus(predicted).count();
        let total = truth.n_cells();
        let tn = total.saturating_sub(tp).saturating_sub(fp).saturating_sub(fn_);
        Self { tp, fp, fn_, tn }
    }

    /// `TP / (TP + FP)`; defined as 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`; defined as 0 when there are no true errors.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; 0 when either is 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One error type's recall cell: `recall` is `None` when the lake holds
/// no errors of this type — "nothing to recall" is not the same signal
/// as "missed every error", and collapsing both to 0.0 made downstream
/// consumers (averages, the eval gate) fail on vacuous cells.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeRecall {
    /// Error-type name as given in the typed truth.
    pub name: String,
    /// Fraction of this type's ground-truth errors the prediction
    /// covers; `None` when `support == 0`.
    pub recall: Option<f64>,
    /// Number of ground-truth errors of this type.
    pub support: usize,
}

/// Recall broken down by error type, given one ground-truth mask per type
/// (paper Table 3: MV / REP / SEM / TYP).
#[derive(Debug, Clone)]
pub struct PerTypeRecall {
    /// One cell per typed truth mask, in input order.
    pub recalls: Vec<TypeRecall>,
}

impl PerTypeRecall {
    /// Computes per-type recall: the fraction of each type's ground-truth
    /// errors that the prediction covers. Types with zero support get an
    /// explicit `recall: None` rather than a vacuous 0.0.
    pub fn compute(predicted: &CellMask, typed_truth: &[(String, CellMask)]) -> Self {
        let recalls = typed_truth
            .iter()
            .map(|(name, mask)| {
                let support = mask.count();
                let hit = predicted.and(mask).count();
                let recall = if support == 0 { None } else { Some(ratio(hit, support)) };
                TypeRecall { name: name.clone(), recall, support }
            })
            .collect();
        Self { recalls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::{CellId, Lake};
    use crate::table::{Column, Table};

    fn lake() -> Lake {
        Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", ["1", "2", "3", "4"]), Column::new("b", ["w", "x", "y", "z"])],
        )])
    }

    #[test]
    fn perfect_prediction() {
        let l = lake();
        let truth = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 3, 1)]);
        let c = Confusion::from_masks(&truth, &truth);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 0, 0, 6));
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn partial_prediction() {
        let l = lake();
        let truth = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 1, 0)]);
        let pred = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 2, 1)]);
        let c = Confusion::from_masks(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 1));
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let l = lake();
        let nothing = CellMask::empty(&l);
        let c = Confusion::from_masks(&nothing, &nothing);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.tn, 8);
    }

    #[test]
    fn per_type_recall() {
        let l = lake();
        let mv = CellMask::from_cells(&l, [CellId::new(0, 0, 0)]);
        let typo = CellMask::from_cells(&l, [CellId::new(0, 1, 0), CellId::new(0, 2, 0)]);
        let pred = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 1, 0)]);
        let per = PerTypeRecall::compute(&pred, &[("MV".into(), mv), ("TYP".into(), typo)]);
        assert_eq!(
            per.recalls[0],
            TypeRecall { name: "MV".to_string(), recall: Some(1.0), support: 1 }
        );
        assert_eq!(per.recalls[1].recall, Some(0.5));
        assert_eq!(per.recalls[1].support, 2);
    }

    #[test]
    fn per_type_recall_distinguishes_zero_support_from_missed() {
        let l = lake();
        let missed = CellMask::from_cells(&l, [CellId::new(0, 0, 0)]);
        let none = CellMask::empty(&l);
        let pred = CellMask::empty(&l);
        let per = PerTypeRecall::compute(&pred, &[("MV".into(), missed), ("NO".into(), none)]);
        // Missed every MV error: a real 0.0.
        assert_eq!(
            per.recalls[0],
            TypeRecall { name: "MV".to_string(), recall: Some(0.0), support: 1 }
        );
        // No NO errors exist: explicitly vacuous, not 0.0.
        assert_eq!(per.recalls[1], TypeRecall { name: "NO".to_string(), recall: None, support: 0 });
    }

    #[test]
    #[should_panic(expected = "different lake shapes")]
    fn from_masks_rejects_mismatched_shapes() {
        let l = lake();
        let other = Lake::new(vec![Table::new("u", vec![Column::new("a", ["1", "2"])])]);
        let _ = Confusion::from_masks(&CellMask::empty(&l), &CellMask::empty(&other));
    }
}
