//! Cell-level evaluation: confusion counts, precision / recall / F1, and
//! per-error-type recall (paper Tables 2 & 3, Figures 3–9).

use crate::mask::CellMask;

/// Cell-level confusion counts of a prediction against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted error, is error.
    pub tp: usize,
    /// Predicted error, is clean.
    pub fp: usize,
    /// Predicted clean, is error.
    pub fn_: usize,
    /// Predicted clean, is clean.
    pub tn: usize,
}

impl Confusion {
    /// Compares a predicted error mask against the ground-truth error mask.
    pub fn from_masks(predicted: &CellMask, truth: &CellMask) -> Self {
        let tp = predicted.and(truth).count();
        let fp = predicted.minus(truth).count();
        let fn_ = truth.minus(predicted).count();
        let total = truth.n_cells();
        let tn = total - tp - fp - fn_;
        Self { tp, fp, fn_, tn }
    }

    /// `TP / (TP + FP)`; defined as 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`; defined as 0 when there are no true errors.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; 0 when either is 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Recall broken down by error type, given one ground-truth mask per type
/// (paper Table 3: MV / REP / SEM / TYP).
#[derive(Debug, Clone)]
pub struct PerTypeRecall {
    /// `(type name, recall, #errors of that type)` triples in input order.
    pub recalls: Vec<(String, f64, usize)>,
}

impl PerTypeRecall {
    /// Computes per-type recall: the fraction of each type's ground-truth
    /// errors that the prediction covers.
    pub fn compute(predicted: &CellMask, typed_truth: &[(String, CellMask)]) -> Self {
        let recalls = typed_truth
            .iter()
            .map(|(name, mask)| {
                let total = mask.count();
                let hit = predicted.and(mask).count();
                (name.clone(), ratio(hit, total), total)
            })
            .collect();
        Self { recalls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::{CellId, Lake};
    use crate::table::{Column, Table};

    fn lake() -> Lake {
        Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", ["1", "2", "3", "4"]), Column::new("b", ["w", "x", "y", "z"])],
        )])
    }

    #[test]
    fn perfect_prediction() {
        let l = lake();
        let truth = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 3, 1)]);
        let c = Confusion::from_masks(&truth, &truth);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 0, 0, 6));
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn partial_prediction() {
        let l = lake();
        let truth = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 1, 0)]);
        let pred = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 2, 1)]);
        let c = Confusion::from_masks(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 1));
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let l = lake();
        let nothing = CellMask::empty(&l);
        let c = Confusion::from_masks(&nothing, &nothing);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.tn, 8);
    }

    #[test]
    fn per_type_recall() {
        let l = lake();
        let mv = CellMask::from_cells(&l, [CellId::new(0, 0, 0)]);
        let typo = CellMask::from_cells(&l, [CellId::new(0, 1, 0), CellId::new(0, 2, 0)]);
        let pred = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 1, 0)]);
        let per = PerTypeRecall::compute(&pred, &[("MV".into(), mv), ("TYP".into(), typo)]);
        assert_eq!(per.recalls[0], ("MV".to_string(), 1.0, 1));
        assert_eq!(per.recalls[1].1, 0.5);
        assert_eq!(per.recalls[1].2, 2);
    }
}
