//! The labeling interface: the paper's "user" who answers
//! is-this-cell-erroneous questions, simulated from ground truth exactly
//! as the paper's experiments simulate it.

use crate::lake::CellId;
use crate::mask::CellMask;

/// Something that can label cells (a user, or a ground-truth oracle).
pub trait Labeler {
    /// `true` iff the cell is erroneous.
    fn label(&mut self, id: CellId) -> bool;
    /// Number of labels handed out so far.
    fn labels_used(&self) -> usize;
}

/// Ground-truth oracle: answers from the error mask and counts labels.
#[derive(Debug)]
pub struct Oracle<'a> {
    truth: &'a CellMask,
    used: usize,
}

impl<'a> Oracle<'a> {
    /// Creates an oracle over a ground-truth error mask.
    pub fn new(truth: &'a CellMask) -> Self {
        Self { truth, used: 0 }
    }
}

impl Labeler for Oracle<'_> {
    fn label(&mut self, id: CellId) -> bool {
        self.used += 1;
        self.truth.get(id)
    }

    fn labels_used(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::Lake;
    use crate::table::{Column, Table};

    #[test]
    fn oracle_answers_and_counts() {
        let lake = Lake::new(vec![Table::new("t", vec![Column::new("a", ["1", "2"])])]);
        let truth = CellMask::from_cells(&lake, [CellId::new(0, 1, 0)]);
        let mut o = Oracle::new(&truth);
        assert!(!o.label(CellId::new(0, 0, 0)));
        assert!(o.label(CellId::new(0, 1, 0)));
        assert_eq!(o.labels_used(), 2);
    }
}
