//! Per-lake cell masks: error sets, detector verdicts, predictions.

use crate::lake::{CellId, Lake};

/// A boolean flag per cell of a lake, stored as one `Vec<bool>` per table in
/// row-major order. Used for ground-truth error masks, per-error-type masks
/// and system predictions; set algebra on masks implements the paper's
/// evaluation (TP/FP/FN counting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMask {
    /// `(n_rows, n_cols)` per table, to map `CellId`s to flat offsets.
    dims: Vec<(usize, usize)>,
    /// Row-major flags, one vec per table.
    flags: Vec<Vec<bool>>,
}

impl CellMask {
    /// An all-false mask shaped like `lake`.
    pub fn empty(lake: &Lake) -> Self {
        let dims: Vec<_> = lake.tables.iter().map(|t| (t.n_rows(), t.n_cols())).collect();
        let flags = dims.iter().map(|&(r, c)| vec![false; r * c]).collect();
        Self { dims, flags }
    }

    /// Builds a mask shaped like `lake` with the given cells set.
    pub fn from_cells(lake: &Lake, cells: impl IntoIterator<Item = CellId>) -> Self {
        let mut m = Self::empty(lake);
        for id in cells {
            m.set(id, true);
        }
        m
    }

    /// An all-false mask with explicit per-table `(rows, cols)` shapes —
    /// the decode-side constructor for persisted masks, where the shape
    /// comes from the snapshot rather than a live [`Lake`].
    pub fn from_dims(dims: Vec<(usize, usize)>) -> Self {
        let flags = dims.iter().map(|&(r, c)| vec![false; r * c]).collect();
        Self { dims, flags }
    }

    /// The per-table `(rows, cols)` shapes the mask covers.
    pub fn dims(&self) -> &[(usize, usize)] {
        &self.dims
    }

    fn offset(&self, id: CellId) -> usize {
        let (_, cols) = self.dims[id.table];
        id.row * cols + id.col
    }

    /// Flag of one cell.
    pub fn get(&self, id: CellId) -> bool {
        self.flags[id.table][self.offset(id)]
    }

    /// Sets the flag of one cell.
    pub fn set(&mut self, id: CellId, value: bool) {
        let o = self.offset(id);
        self.flags[id.table][o] = value;
    }

    /// Number of set cells.
    pub fn count(&self) -> usize {
        self.flags.iter().map(|f| f.iter().filter(|b| **b).count()).sum()
    }

    /// Total number of cells covered by the mask.
    pub fn n_cells(&self) -> usize {
        self.flags.iter().map(Vec::len).sum()
    }

    /// Fraction of set cells (the paper's "error rate" column of Table 1).
    pub fn rate(&self) -> f64 {
        let n = self.n_cells();
        if n == 0 {
            0.0
        } else {
            self.count() as f64 / n as f64
        }
    }

    /// Iterates over the ids of all set cells, table-major.
    pub fn iter_set(&self) -> impl Iterator<Item = CellId> + '_ {
        self.dims.iter().enumerate().flat_map(move |(t, &(_, cols))| {
            self.flags[t].iter().enumerate().filter(|(_, b)| **b).map(move |(o, _)| {
                if cols == 0 {
                    unreachable!("set flag in zero-column table")
                }
                CellId::new(t, o / cols, o % cols)
            })
        })
    }

    /// `self ∧ other`.
    ///
    /// # Panics
    /// Panics if the masks have different shapes.
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a && b)
    }

    /// `self ∨ other`.
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a || b)
    }

    /// `self ∧ ¬other`.
    pub fn minus(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a && !b)
    }

    fn zip_with(&self, other: &Self, f: impl Fn(bool, bool) -> bool) -> Self {
        assert_eq!(self.dims, other.dims, "mask shape mismatch");
        let flags = self
            .flags
            .iter()
            .zip(&other.flags)
            .map(|(a, b)| a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect())
            .collect();
        Self { dims: self.dims.clone(), flags }
    }

    /// Dimensions `(rows, cols)` of table `t` as seen by this mask.
    pub fn table_dims(&self, t: usize) -> (usize, usize) {
        self.dims[t]
    }

    /// Returns a copy with every flag of the given tables cleared — how
    /// the evaluation restricts itself to the scored (non-quarantined)
    /// subset of a degraded run.
    pub fn without_tables(&self, tables: &[usize]) -> Self {
        let mut out = self.clone();
        for &t in tables {
            out.flags[t].fill(false);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};

    fn lake() -> Lake {
        Lake::new(vec![
            Table::new("a", vec![Column::new("x", ["1", "2"]), Column::new("y", ["3", "4"])]),
            Table::new("b", vec![Column::new("z", ["5", "6", "7"])]),
        ])
    }

    #[test]
    fn set_get_count() {
        let l = lake();
        let mut m = CellMask::empty(&l);
        assert_eq!(m.count(), 0);
        assert_eq!(m.n_cells(), 7);
        m.set(CellId::new(0, 1, 0), true);
        m.set(CellId::new(1, 2, 0), true);
        assert!(m.get(CellId::new(0, 1, 0)));
        assert!(!m.get(CellId::new(0, 0, 0)));
        assert_eq!(m.count(), 2);
        assert!((m.rate() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn iter_set_round_trips() {
        let l = lake();
        let cells = [CellId::new(0, 0, 1), CellId::new(1, 1, 0)];
        let m = CellMask::from_cells(&l, cells);
        let got: Vec<_> = m.iter_set().collect();
        assert_eq!(got, cells);
    }

    #[test]
    fn set_algebra() {
        let l = lake();
        let a = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(0, 1, 1)]);
        let b = CellMask::from_cells(&l, [CellId::new(0, 1, 1), CellId::new(1, 0, 0)]);
        assert_eq!(a.and(&b).count(), 1);
        assert_eq!(a.or(&b).count(), 3);
        assert_eq!(a.minus(&b).count(), 1);
        assert!(a.minus(&b).get(CellId::new(0, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "mask shape mismatch")]
    fn shape_mismatch_panics() {
        let l1 = lake();
        let l2 = Lake::new(vec![Table::new("a", vec![Column::new("x", ["1"])])]);
        let _ = CellMask::empty(&l1).and(&CellMask::empty(&l2));
    }

    #[test]
    fn without_tables_clears_whole_tables_only() {
        let l = lake();
        let m = CellMask::from_cells(&l, [CellId::new(0, 0, 0), CellId::new(1, 1, 0)]);
        let cleared = m.without_tables(&[1]);
        assert_eq!(cleared.count(), 1);
        assert!(cleared.get(CellId::new(0, 0, 0)));
        assert!(!cleared.get(CellId::new(1, 1, 0)));
        assert_eq!(m.count(), 2, "source mask untouched");
    }

    #[test]
    fn empty_lake_mask() {
        let l = Lake::default();
        let m = CellMask::empty(&l);
        assert_eq!(m.count(), 0);
        assert_eq!(m.rate(), 0.0);
        assert_eq!(m.iter_set().count(), 0);
    }
}
