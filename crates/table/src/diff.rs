//! Ground-truth diffing: realizes Eq. 1 of the paper, `E = { t_k[i,j] |
//! t_k[i,j] ≠ t_k*[i,j] }`.

use crate::lake::Lake;
use crate::mask::CellMask;
use crate::table::Table;

/// Marks every cell of `dirty` whose value differs from the corresponding
/// cell of `clean`. The per-table result is written into `mask` using the
/// provided table index.
///
/// # Panics
/// Panics if the two tables disagree in shape — the paper's dirty/clean
/// pairs are cell-aligned by construction.
pub fn diff_tables(dirty: &Table, clean: &Table, table_idx: usize, mask: &mut CellMask) {
    assert_eq!(dirty.n_rows(), clean.n_rows(), "row count mismatch in {:?}", dirty.name);
    assert_eq!(dirty.n_cols(), clean.n_cols(), "column count mismatch in {:?}", dirty.name);
    for c in 0..dirty.n_cols() {
        for r in 0..dirty.n_rows() {
            if dirty.cell(r, c) != clean.cell(r, c) {
                mask.set(crate::lake::CellId::new(table_idx, r, c), true);
            }
        }
    }
}

/// Diffs a whole (dirty, clean) lake pair into an error [`CellMask`].
///
/// # Panics
/// Panics if the lakes have different numbers of tables or misaligned
/// shapes.
pub fn diff_lakes(dirty: &Lake, clean: &Lake) -> CellMask {
    assert_eq!(dirty.n_tables(), clean.n_tables(), "lake size mismatch");
    let mut mask = CellMask::empty(dirty);
    for (i, (d, c)) in dirty.tables.iter().zip(&clean.tables).enumerate() {
        diff_tables(d, c, i, &mut mask);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::CellId;
    use crate::table::Column;

    #[test]
    fn identical_lakes_have_no_errors() {
        let l = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", ["1", "2"]), Column::new("b", ["x", "y"])],
        )]);
        assert_eq!(diff_lakes(&l, &l).count(), 0);
    }

    #[test]
    fn differing_cells_are_flagged() {
        let clean = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", ["1", "2"]), Column::new("b", ["x", "y"])],
        )]);
        let mut dirty = clean.clone();
        *dirty.tables[0].cell_mut(1, 0) = "99".into();
        *dirty.tables[0].cell_mut(0, 1) = "".into();
        let e = diff_lakes(&dirty, &clean);
        assert_eq!(e.count(), 2);
        assert!(e.get(CellId::new(0, 1, 0)));
        assert!(e.get(CellId::new(0, 0, 1)));
    }

    #[test]
    #[should_panic(expected = "lake size mismatch")]
    fn misaligned_lakes_panic() {
        let a = Lake::new(vec![]);
        let b = Lake::new(vec![Table::new("t", vec![])]);
        let _ = diff_lakes(&a, &b);
    }
}
