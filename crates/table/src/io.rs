//! Lake ↔ directory persistence: one CSV file per table.
//!
//! The canonical on-disk layout of a generated benchmark is
//! `<root>/dirty/*.csv` + `<root>/clean/*.csv`; this module handles one
//! such directory at a time. Tables load in file-name order so a lake
//! round-trips deterministically.

use crate::csv;
use crate::lake::Lake;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from lake-directory I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A CSV file failed to parse.
    Csv {
        /// File the error came from.
        path: PathBuf,
        /// Parser error.
        source: csv::CsvError,
    },
    /// The directory holds no CSV files.
    EmptyDirectory(PathBuf),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Csv { path, source } => write!(f, "{}: {source}", path.display()),
            IoError::EmptyDirectory(p) => write!(f, "no .csv files in {}", p.display()),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes every table of `lake` as `<dir>/<table name>.csv`, creating the
/// directory if needed.
pub fn write_lake_to_dir(lake: &Lake, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir)?;
    for table in &lake.tables {
        std::fs::write(dir.join(format!("{}.csv", table.name)), csv::write_table(table))?;
    }
    Ok(())
}

/// Loads every `*.csv` in `dir` into a [`Lake`], in file-name order.
/// Table names are the file stems.
pub fn read_lake_from_dir(dir: &Path) -> Result<Lake, IoError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(IoError::EmptyDirectory(dir.to_path_buf()));
    }
    let mut tables = Vec::new();
    for path in paths {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
        let text = std::fs::read_to_string(&path)?;
        let table =
            csv::parse_table(&name, &text).map_err(|source| IoError::Csv { path, source })?;
        tables.push(table);
    }
    Ok(Lake::new(tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("matelda_io_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lake_round_trips_through_a_directory() {
        let lake = Lake::new(vec![
            Table::new("alpha", vec![Column::new("a", ["1", "2"]), Column::new("b", ["x,y", "z"])]),
            Table::new("beta", vec![Column::new("c", ["\"quoted\"", ""])]),
        ]);
        let dir = tmp("roundtrip");
        write_lake_to_dir(&lake, &dir).expect("write");
        let back = read_lake_from_dir(&dir).expect("read");
        assert_eq!(lake, back, "file-name order matches insertion order here");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        match read_lake_from_dir(&dir) {
            Err(IoError::EmptyDirectory(_)) => {}
            other => panic!("expected EmptyDirectory, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bad_csv_reports_the_file() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("broken.csv"), "a,b\n1\n").expect("write");
        match read_lake_from_dir(&dir) {
            Err(IoError::Csv { path, .. }) => {
                assert!(path.ends_with("broken.csv"));
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        match read_lake_from_dir(Path::new("/definitely/not/here")) {
            Err(IoError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
