//! Lake ↔ directory persistence: one CSV file per table.
//!
//! The canonical on-disk layout of a generated benchmark is
//! `<root>/dirty/*.csv` + `<root>/clean/*.csv`; this module handles one
//! such directory at a time. Tables load in file-name order so a lake
//! round-trips deterministically.

use crate::csv;
use crate::lake::Lake;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from lake-directory I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A CSV file failed to parse.
    Csv {
        /// File the error came from.
        path: PathBuf,
        /// Parser error.
        source: csv::CsvError,
    },
    /// The directory holds no CSV files.
    EmptyDirectory(PathBuf),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Csv { path, source } => write!(f, "{}: {source}", path.display()),
            IoError::EmptyDirectory(p) => write!(f, "no .csv files in {}", p.display()),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes every table of `lake` as `<dir>/<table name>.csv`, creating the
/// directory if needed.
pub fn write_lake_to_dir(lake: &Lake, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir)?;
    for table in &lake.tables {
        std::fs::write(dir.join(format!("{}.csv", table.name)), csv::write_table(table))?;
    }
    Ok(())
}

/// How lake ingestion treats malformed files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Fail the whole read on the first malformed file (the historical
    /// behavior).
    #[default]
    Strict,
    /// Salvage what parses: invalid UTF-8 is scrubbed (lossy decode),
    /// ragged rows are padded/truncated to the header width and
    /// unterminated quotes are closed at end of input. Files that still
    /// don't yield a table (no header at all) are skipped.
    Repair,
    /// Parse strictly but skip malformed files instead of failing.
    Skip,
}

/// Options for [`read_lake_from_dir_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// Malformed-file policy.
    pub mode: ReadMode,
}

impl ReadOptions {
    /// Strict (fail-fast) options.
    pub fn strict() -> Self {
        ReadOptions { mode: ReadMode::Strict }
    }

    /// Repair (salvage) options.
    pub fn repair() -> Self {
        ReadOptions { mode: ReadMode::Repair }
    }

    /// Skip (quarantine whole files) options.
    pub fn skip() -> Self {
        ReadOptions { mode: ReadMode::Skip }
    }
}

/// What happened to one CSV file during ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOutcome {
    /// Parsed cleanly.
    Loaded,
    /// Parsed after repairs (ragged rows, quote closure, UTF-8 scrub).
    Repaired {
        /// Field-level repairs applied by the CSV parser.
        summary: csv::RepairSummary,
        /// Whether invalid UTF-8 bytes were replaced during decoding.
        utf8_scrubbed: bool,
    },
    /// Could not be parsed under the active mode; no table was produced.
    Skipped {
        /// Why the file was skipped.
        reason: String,
    },
}

/// Per-file ingestion record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileIngest {
    /// The source file.
    pub path: PathBuf,
    /// Index of the produced table within the returned lake (`None` when
    /// the file was skipped).
    pub table: Option<usize>,
    /// What happened.
    pub outcome: FileOutcome,
}

/// The per-file ingestion log of one directory read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// One entry per `*.csv` file considered, in file-name order.
    pub files: Vec<FileIngest>,
}

impl IngestReport {
    /// Files that produced no table.
    pub fn skipped(&self) -> impl Iterator<Item = &FileIngest> {
        self.files.iter().filter(|f| f.table.is_none())
    }

    /// Files that needed repairs to parse.
    pub fn repaired(&self) -> impl Iterator<Item = &FileIngest> {
        self.files.iter().filter(|f| matches!(f.outcome, FileOutcome::Repaired { .. }))
    }
}

/// Loads every `*.csv` in `dir` into a [`Lake`], in file-name order.
/// Table names are the file stems. Strict mode: the first malformed file
/// fails the read (see [`read_lake_from_dir_with`] for the tolerant
/// modes).
pub fn read_lake_from_dir(dir: &Path) -> Result<Lake, IoError> {
    read_lake_from_dir_with(dir, &ReadOptions::strict()).map(|(lake, _)| lake)
}

/// The `*.csv` files of `dir`, sorted by **file name** (byte order of
/// the name, not the full path). Table indices, quarantine reports,
/// ingest logs and the lake fingerprint all key off this order, so it
/// must not depend on `readdir` order (which varies by filesystem and
/// platform) or on the spelling of the directory prefix.
pub fn csv_paths_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    Ok(paths)
}

/// Loads every `*.csv` in `dir` into a [`Lake`] under the given options,
/// returning the lake together with a per-file [`IngestReport`]. In
/// `Repair` and `Skip` modes a malformed file never aborts the read; it
/// is salvaged or skipped and the report says which and why. A directory
/// with no `*.csv` files at all is still an error in every mode.
pub fn read_lake_from_dir_with(
    dir: &Path,
    options: &ReadOptions,
) -> Result<(Lake, IngestReport), IoError> {
    let paths = csv_paths_sorted(dir)?;
    if paths.is_empty() {
        return Err(IoError::EmptyDirectory(dir.to_path_buf()));
    }
    let mut tables = Vec::new();
    let mut report = IngestReport::default();
    for path in paths {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
        if options.mode == ReadMode::Strict {
            // Fail-fast path, byte-compatible with the historical API:
            // invalid UTF-8 is an Io error, a parse failure a Csv error.
            let text = std::fs::read_to_string(&path)?;
            let table = csv::parse_table(&name, &text)
                .map_err(|source| IoError::Csv { path: path.clone(), source })?;
            report.files.push(FileIngest {
                path,
                table: Some(tables.len()),
                outcome: FileOutcome::Loaded,
            });
            tables.push(table);
            continue;
        }
        let bytes = std::fs::read(&path)?;
        match ingest_tolerant(&name, &bytes, options.mode) {
            (outcome, Some(table)) => {
                report.files.push(FileIngest { path, table: Some(tables.len()), outcome });
                tables.push(table);
            }
            (outcome, None) => {
                report.files.push(FileIngest { path, table: None, outcome });
            }
        }
    }
    Ok((Lake::new(tables), report))
}

/// Parses one file's bytes under a tolerant mode (`Repair` or `Skip`)
/// into an outcome and maybe a table.
fn ingest_tolerant(
    name: &str,
    bytes: &[u8],
    mode: ReadMode,
) -> (FileOutcome, Option<crate::Table>) {
    match mode {
        ReadMode::Strict => unreachable!("strict mode handled by the caller"),
        ReadMode::Skip => match std::str::from_utf8(bytes) {
            Err(e) => (FileOutcome::Skipped { reason: format!("invalid utf-8: {e}") }, None),
            Ok(text) => match csv::parse_table(name, text) {
                Ok(table) => (FileOutcome::Loaded, Some(table)),
                Err(e) => (FileOutcome::Skipped { reason: e.to_string() }, None),
            },
        },
        ReadMode::Repair => {
            let text = String::from_utf8_lossy(bytes);
            let utf8_scrubbed = matches!(text, std::borrow::Cow::Owned(_));
            match csv::parse_table_repair(name, &text) {
                Ok((table, summary)) if summary.is_clean() && !utf8_scrubbed => {
                    (FileOutcome::Loaded, Some(table))
                }
                Ok((table, summary)) => {
                    (FileOutcome::Repaired { summary, utf8_scrubbed }, Some(table))
                }
                Err(e) => (FileOutcome::Skipped { reason: e.to_string() }, None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("matelda_io_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lake_round_trips_through_a_directory() {
        let lake = Lake::new(vec![
            Table::new("alpha", vec![Column::new("a", ["1", "2"]), Column::new("b", ["x,y", "z"])]),
            Table::new("beta", vec![Column::new("c", ["\"quoted\"", ""])]),
        ]);
        let dir = tmp("roundtrip");
        write_lake_to_dir(&lake, &dir).expect("write");
        let back = read_lake_from_dir(&dir).expect("read");
        assert_eq!(lake, back, "file-name order matches insertion order here");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn tables_load_in_file_name_order_not_creation_order() {
        // Regression (ISSUE 3 satellite): table indices must be a pure
        // function of the file *names*, never of readdir order. Files
        // are created in reverse name order and interleaved with
        // non-CSV noise; the lake must still come back name-sorted.
        let dir = tmp("name_order");
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["zeta.csv", "mid.csv", "alpha.csv", "ignore.txt", "beta.csv"] {
            std::fs::write(dir.join(name), "c\n1\n").expect("write");
        }
        let sorted = csv_paths_sorted(&dir).expect("list");
        let names: Vec<&str> =
            sorted.iter().map(|p| p.file_name().and_then(|n| n.to_str()).expect("name")).collect();
        assert_eq!(names, vec!["alpha.csv", "beta.csv", "mid.csv", "zeta.csv"]);
        let lake = read_lake_from_dir(&dir).expect("read");
        let table_names: Vec<&str> = lake.tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(table_names, vec!["alpha", "beta", "mid", "zeta"]);
        // The tolerant reader sees the identical order.
        let (lake2, report) = read_lake_from_dir_with(&dir, &ReadOptions::repair()).expect("read");
        assert_eq!(lake, lake2);
        let report_names: Vec<&str> = report
            .files
            .iter()
            .map(|f| f.path.file_name().and_then(|n| n.to_str()).expect("name"))
            .collect();
        assert_eq!(report_names, vec!["alpha.csv", "beta.csv", "mid.csv", "zeta.csv"]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        match read_lake_from_dir(&dir) {
            Err(IoError::EmptyDirectory(_)) => {}
            other => panic!("expected EmptyDirectory, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bad_csv_reports_the_file() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("broken.csv"), "a,b\n1\n").expect("write");
        match read_lake_from_dir(&dir) {
            Err(IoError::Csv { path, .. }) => {
                assert!(path.ends_with("broken.csv"));
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        match read_lake_from_dir(Path::new("/definitely/not/here")) {
            Err(IoError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    /// A directory with one clean file, one ragged file, one invalid-UTF-8
    /// file and one empty file.
    fn hostile_dir(name: &str) -> PathBuf {
        let dir = tmp(name);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("a_clean.csv"), "x,y\n1,2\n").expect("write");
        std::fs::write(dir.join("b_ragged.csv"), "x,y\n1\n2,3,4\n").expect("write");
        std::fs::write(dir.join("c_binary.csv"), [b'x', b',', b'y', b'\n', 0xFF, 0xFE, b'\n'])
            .expect("write");
        std::fs::write(dir.join("d_empty.csv"), "").expect("write");
        dir
    }

    #[test]
    fn skip_mode_loads_only_well_formed_files() {
        let dir = hostile_dir("skipmode");
        let (lake, report) = read_lake_from_dir_with(&dir, &ReadOptions::skip()).expect("read");
        assert_eq!(lake.n_tables(), 1);
        assert_eq!(lake[0].name, "a_clean");
        assert_eq!(report.files.len(), 4);
        assert_eq!(report.skipped().count(), 3);
        let skipped: Vec<&str> = report
            .skipped()
            .map(|f| f.path.file_name().and_then(|n| n.to_str()).expect("name"))
            .collect();
        assert_eq!(skipped, vec!["b_ragged.csv", "c_binary.csv", "d_empty.csv"]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn repair_mode_salvages_ragged_and_binary_files() {
        let dir = hostile_dir("repairmode");
        let (lake, report) = read_lake_from_dir_with(&dir, &ReadOptions::repair()).expect("read");
        // Clean + ragged (padded/truncated) + binary (scrubbed); only the
        // headerless empty file is skipped.
        assert_eq!(lake.n_tables(), 3);
        assert_eq!(report.repaired().count(), 2);
        assert_eq!(report.skipped().count(), 1);
        // Every salvaged table is rectangular: widths agree with header.
        for t in &lake.tables {
            for col in &t.columns {
                assert_eq!(col.values.len(), t.n_rows(), "{}", t.name);
            }
        }
        // The report's table indices address the right lake slots.
        for f in &report.files {
            if let Some(i) = f.table {
                let stem = f.path.file_stem().and_then(|s| s.to_str()).expect("stem");
                assert_eq!(lake[i].name, stem);
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn strict_mode_through_options_still_fails_fast() {
        let dir = hostile_dir("strictmode");
        match read_lake_from_dir_with(&dir, &ReadOptions::strict()) {
            Err(IoError::Csv { path, .. }) => assert!(path.ends_with("b_ragged.csv")),
            other => panic!("expected Csv error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
