//! Column-major relational tables of string cells.

use crate::value::{infer_column_type, DataType};

/// A named column holding the serialized cell values of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Attribute name (header).
    pub name: String,
    /// Cell values, one per row, in row order.
    pub values: Vec<String>,
}

impl Column {
    /// Creates a column from anything convertible to strings.
    pub fn new(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self { name: name.into(), values: values.into_iter().map(Into::into).collect() }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dominant [`DataType`] of the column (majority vote over non-nulls).
    pub fn data_type(&self) -> DataType {
        infer_column_type(self.values.iter().map(String::as_str))
    }
}

/// A relational instance: an ordered list of equally long [`Column`]s.
///
/// Tables are column-major because every base detector in the paper
/// (outliers, typo checks, FD checks) is column-local; row views are
/// materialized on demand for serialization (domain folding, §3.2) and
/// tuple-at-a-time labeling (Raha-Standard / Raha-RT budgets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name (file stem in a lake on disk).
    pub name: String,
    /// The columns; all share the same length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Builds a table, checking that all columns have equal length.
    ///
    /// # Panics
    /// Panics if column lengths disagree — a table with ragged columns is a
    /// construction bug, not a data error.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "ragged table: column {:?} has {} rows, expected {}",
                    c.name,
                    c.len(),
                    first.len()
                );
            }
        }
        Self { name: name.into(), columns }
    }

    /// Builds a table from a header and row-major string data.
    pub fn from_rows(name: impl Into<String>, header: &[&str], rows: &[Vec<String>]) -> Self {
        let mut columns: Vec<Column> = header
            .iter()
            .map(|h| Column { name: (*h).to_string(), values: Vec::with_capacity(rows.len()) })
            .collect();
        for row in rows {
            assert_eq!(row.len(), header.len(), "row width mismatch in table");
            for (c, v) in columns.iter_mut().zip(row) {
                c.values.push(v.clone());
            }
        }
        Self { name: name.into(), columns }
    }

    /// Number of rows (tuples).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns (attributes).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.n_rows() * self.n_cols()
    }

    /// The cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.columns[col].values[row]
    }

    /// Mutable access to the cell at `(row, col)`.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut String {
        &mut self.columns[col].values[row]
    }

    /// Materializes row `i` as a vector of cell references.
    pub fn row(&self, i: usize) -> Vec<&str> {
        self.columns.iter().map(|c| c.values[i].as_str()).collect()
    }

    /// Iterates over rows as vectors of cell references.
    pub fn rows(&self) -> impl Iterator<Item = Vec<&str>> + '_ {
        (0..self.n_rows()).map(|i| self.row(i))
    }

    /// The header as a vector of attribute names.
    pub fn header(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of the column with the given name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Serializes the table into a single string: all cell values of a row
    /// joined by spaces, rows joined by spaces (paper Alg. 1 line 3 — the
    /// input to the domain-folding embedding).
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(self.n_cells() * 8);
        for i in 0..self.n_rows() {
            for c in &self.columns {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&c.values[i]);
            }
        }
        out
    }

    /// Like [`Table::serialize`] but only over the given sample of row
    /// indices — used by the Matelda-RS row-sampling variant (§4.5.2).
    pub fn serialize_rows(&self, rows: &[usize]) -> String {
        let mut out = String::new();
        for &i in rows {
            for c in &self.columns {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&c.values[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn players() -> Table {
        Table::new(
            "players",
            vec![
                Column::new("Name", ["Mbappé", "Haaland", "Kane"]),
                Column::new("Age", ["24", "23", "30"]),
                Column::new("Club", ["PSG", "Man City", "Bayern"]),
            ],
        )
    }

    #[test]
    fn dimensions_and_access() {
        let t = players();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_cells(), 9);
        assert_eq!(t.cell(1, 0), "Haaland");
        assert_eq!(t.row(2), vec!["Kane", "30", "Bayern"]);
        assert_eq!(t.header(), vec!["Name", "Age", "Club"]);
        assert_eq!(t.column_index("Age"), Some(1));
        assert_eq!(t.column_index("Salary"), None);
    }

    #[test]
    #[should_panic(expected = "ragged table")]
    fn ragged_columns_rejected() {
        Table::new("bad", vec![Column::new("a", ["1", "2"]), Column::new("b", ["x"])]);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows =
            vec![vec!["a".to_string(), "1".to_string()], vec!["b".to_string(), "2".to_string()]];
        let t = Table::from_rows("t", &["k", "v"], &rows);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), "2");
    }

    #[test]
    fn serialization_concatenates_row_major() {
        let t = Table::new("t", vec![Column::new("a", ["1", "3"]), Column::new("b", ["2", "4"])]);
        assert_eq!(t.serialize(), "1 2 3 4");
        assert_eq!(t.serialize_rows(&[1]), "3 4");
        assert_eq!(t.serialize_rows(&[]), "");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", vec![]);
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cells(), 0);
        assert_eq!(t.serialize(), "");
    }

    #[test]
    fn cell_mut_edits_in_place() {
        let mut t = players();
        *t.cell_mut(0, 1) = "1995".to_string();
        assert_eq!(t.cell(0, 1), "1995");
    }
}
