//! Column profiling: the descriptive statistics layer used by constraint
//! suggestion (Deequ/GX baselines), the CLI's `profile` command and ad-hoc
//! lake exploration.

use crate::table::{Column, Table};
use crate::value::{as_f64, is_null, DataType};
use std::collections::HashMap;

/// Descriptive statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Dominant data type.
    pub data_type: DataType,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of missing values.
    pub n_nulls: usize,
    /// Number of distinct values (nulls collapse to one value).
    pub n_distinct: usize,
    /// Shannon entropy of the value distribution, in bits.
    pub entropy_bits: f64,
    /// Most frequent values with counts, descending, capped at 5.
    pub top_values: Vec<(String, usize)>,
    /// Numeric summary, when the column is majority-numeric.
    pub numeric: Option<NumericSummary>,
    /// Mean character length of the serialized values.
    pub mean_length: f64,
}

/// Min / max / mean / standard deviation / quartiles of the parseable
/// numeric values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericSummary {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// 25th / 50th / 75th percentiles.
    pub quartiles: [f64; 3],
}

impl ColumnProfile {
    /// Profiles one column.
    pub fn of(column: &Column) -> Self {
        let n_rows = column.len();
        let n_nulls = column.values.iter().filter(|v| is_null(v)).count();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut total_len = 0usize;
        for v in &column.values {
            *counts.entry(v.as_str()).or_insert(0) += 1;
            total_len += v.chars().count();
        }
        let n_distinct = counts.len();

        let entropy_bits = if n_rows == 0 {
            0.0
        } else {
            counts
                .values()
                .map(|&c| {
                    let p = c as f64 / n_rows as f64;
                    -p * p.log2()
                })
                .sum()
        };

        let mut top: Vec<(String, usize)> =
            counts.iter().map(|(v, &c)| (v.to_string(), c)).collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(5);

        let data_type = column.data_type();
        let numeric = if matches!(data_type, DataType::Integer | DataType::Float) {
            let mut nums: Vec<f64> = column.values.iter().filter_map(|v| as_f64(v)).collect();
            if nums.is_empty() {
                None
            } else {
                // total_cmp: a NaN cell value must never panic profiling.
                nums.sort_by(f64::total_cmp);
                let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                let var =
                    nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nums.len() as f64;
                let q = |frac: f64| nums[((nums.len() - 1) as f64 * frac).round() as usize];
                Some(NumericSummary {
                    min: nums[0],
                    max: *nums.last().expect("non-empty"),
                    mean,
                    std: var.sqrt(),
                    quartiles: [q(0.25), q(0.5), q(0.75)],
                })
            }
        } else {
            None
        };

        Self {
            name: column.name.clone(),
            data_type,
            n_rows,
            n_nulls,
            n_distinct,
            entropy_bits,
            top_values: top,
            numeric,
            mean_length: if n_rows == 0 { 0.0 } else { total_len as f64 / n_rows as f64 },
        }
    }

    /// Fraction of non-null rows.
    pub fn completeness(&self) -> f64 {
        if self.n_rows == 0 {
            1.0
        } else {
            1.0 - self.n_nulls as f64 / self.n_rows as f64
        }
    }

    /// `true` when every value is distinct (a key candidate).
    pub fn is_unique(&self) -> bool {
        self.n_distinct == self.n_rows && self.n_nulls == 0
    }
}

/// Profiles every column of a table.
pub fn profile_table(table: &Table) -> Vec<ColumnProfile> {
    table.columns.iter().map(ColumnProfile::of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Column {
        Column::new("c", vals.to_vec())
    }

    #[test]
    fn counts_and_completeness() {
        let p = ColumnProfile::of(&col(&["a", "b", "a", "", "a"]));
        assert_eq!(p.n_rows, 5);
        assert_eq!(p.n_nulls, 1);
        assert_eq!(p.n_distinct, 3);
        assert!((p.completeness() - 0.8).abs() < 1e-12);
        assert_eq!(p.top_values[0], ("a".to_string(), 3));
        assert!(!p.is_unique());
    }

    #[test]
    fn entropy_behaves() {
        // Uniform over 4 values = 2 bits; constant = 0 bits.
        let uniform = ColumnProfile::of(&col(&["a", "b", "c", "d"]));
        assert!((uniform.entropy_bits - 2.0).abs() < 1e-9);
        let constant = ColumnProfile::of(&col(&["x", "x", "x", "x"]));
        assert!(constant.entropy_bits.abs() < 1e-12);
        assert!(uniform.is_unique());
    }

    #[test]
    fn numeric_summary_quartiles() {
        let p = ColumnProfile::of(&col(&["1", "2", "3", "4", "5"]));
        let s = p.numeric.expect("numeric column");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.quartiles, [2.0, 3.0, 4.0]);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn text_column_has_no_numeric_summary() {
        let p = ColumnProfile::of(&col(&["alpha", "beta"]));
        assert!(p.numeric.is_none());
        assert_eq!(p.data_type, DataType::Text);
        assert!((p.mean_length - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_column() {
        let p = ColumnProfile::of(&Column::new("e", Vec::<String>::new()));
        assert_eq!(p.n_rows, 0);
        assert_eq!(p.completeness(), 1.0);
        assert_eq!(p.entropy_bits, 0.0);
        assert!(p.top_values.is_empty());
    }

    #[test]
    fn profile_table_covers_all_columns() {
        let t = Table::new("t", vec![Column::new("a", ["1", "2"]), Column::new("b", ["x", "y"])]);
        let profiles = profile_table(&t);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "a");
        assert!(profiles[0].numeric.is_some());
    }
}
