//! A minimal RFC-4180 CSV reader/writer.
//!
//! The paper's lakes live as directories of CSV files (one dirty + one
//! clean file per table). This module is deliberately small: quoted fields,
//! embedded commas/quotes/newlines, CRLF tolerance — nothing more.

use crate::table::{Column, Table};
use std::fmt;

/// Errors produced while parsing CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A record had a different number of fields than the header.
    RaggedRow {
        /// 1-based line-ish record index (header = record 0).
        record: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote,
    /// Input had no header record.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::RaggedRow { record, found, expected } => {
                write!(f, "record {record}: found {found} fields, expected {expected}")
            }
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted field"),
            CsvError::Empty => write!(f, "empty csv input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// What [`parse_table_repair`] had to do to make malformed input parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Records narrower than the header, padded with empty fields.
    pub padded_rows: usize,
    /// Records wider than the header, truncated to the header width.
    pub truncated_rows: usize,
    /// An unterminated quoted field was closed at end of input.
    pub closed_quote: bool,
}

impl RepairSummary {
    /// Whether anything was actually repaired.
    pub fn is_clean(&self) -> bool {
        *self == RepairSummary::default()
    }
}

/// The record splitter behind both parse modes. In repair mode an
/// unterminated quote is closed at end of input (reported via the flag)
/// instead of erroring.
fn split_records(input: &str, repair: bool) -> Result<(Vec<Vec<String>>, bool), CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the \n (if any) terminates the record.
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    let closed_quote = in_quotes;
    if in_quotes && !repair {
        return Err(CsvError::UnterminatedQuote);
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok((records, closed_quote))
}

/// Splits CSV text into records of fields.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    split_records(input, false).map(|(records, _)| records)
}

/// An incremental version of the record splitter: feed the input in
/// arbitrary pieces (any char boundary, including mid-field, mid-quote,
/// or between the two `"` of an escaped quote), drain completed records
/// as they close, and call [`RecordSplitter::finish`] at end of input.
/// For any split of the input, `feed`+`finish` yields byte-for-byte the
/// same records, flags and errors as [`split_records`] over the whole
/// input — the out-of-core CSV reader leans on that equivalence.
#[derive(Debug, Default)]
pub struct RecordSplitter {
    done: Vec<Vec<String>>,
    record: Vec<String>,
    field: String,
    in_quotes: bool,
    /// Saw a `"` while in quotes; the *next* char decides whether it was
    /// an escaped quote (`""`) or the closing quote. May straddle feeds.
    pending_quote: bool,
    any: bool,
    emitted: usize,
}

impl RecordSplitter {
    /// A splitter with no input consumed yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the next piece of input.
    pub fn feed(&mut self, piece: &str) {
        for c in piece.chars() {
            self.any = true;
            if self.pending_quote {
                self.pending_quote = false;
                if c == '"' {
                    self.field.push('"');
                    continue;
                }
                // The pending quote closed the field; `c` is re-processed
                // below under the not-in-quotes rules.
                self.in_quotes = false;
            }
            if self.in_quotes {
                match c {
                    '"' => self.pending_quote = true,
                    _ => self.field.push(c),
                }
            } else {
                match c {
                    '"' => self.in_quotes = true,
                    ',' => self.record.push(std::mem::take(&mut self.field)),
                    '\r' => {
                        // Swallow; the \n (if any) terminates the record.
                    }
                    '\n' => {
                        self.record.push(std::mem::take(&mut self.field));
                        self.done.push(std::mem::take(&mut self.record));
                    }
                    _ => self.field.push(c),
                }
            }
        }
    }

    /// Takes the records completed so far, leaving any partial record
    /// buffered for the next feed.
    pub fn drain(&mut self) -> Vec<Vec<String>> {
        self.emitted += self.done.len();
        std::mem::take(&mut self.done)
    }

    /// Ends the input, applying the same EOF rules as [`split_records`]:
    /// a still-open quote errors (strict) or is closed and flagged
    /// (repair); a trailing unterminated field/record is flushed; input
    /// that never produced a record is [`CsvError::Empty`]. Returns the
    /// remaining records plus the `closed_quote` flag.
    pub fn finish(mut self, repair: bool) -> Result<(Vec<Vec<String>>, bool), CsvError> {
        // A quote pending at EOF is a closing quote (`peek() == None`).
        if self.pending_quote {
            self.in_quotes = false;
        }
        let closed_quote = self.in_quotes;
        if self.in_quotes && !repair {
            return Err(CsvError::UnterminatedQuote);
        }
        if !self.field.is_empty() || !self.record.is_empty() {
            self.record.push(std::mem::take(&mut self.field));
            self.done.push(std::mem::take(&mut self.record));
        }
        if !self.any || (self.emitted == 0 && self.done.is_empty()) {
            return Err(CsvError::Empty);
        }
        Ok((self.done, closed_quote))
    }
}

/// Parses CSV text (header + data records) into a [`Table`].
pub fn parse_table(name: &str, input: &str) -> Result<Table, CsvError> {
    table_from_records(name, parse_records(input)?)
}

/// Assembles parsed records (header first) into a [`Table`], enforcing
/// the header width. Shared by [`parse_table`] and the chunked reader so
/// both construct byte-identical tables.
pub(crate) fn table_from_records(name: &str, records: Vec<Vec<String>>) -> Result<Table, CsvError> {
    if records.is_empty() {
        return Err(CsvError::Empty);
    }
    let width = records[0].len();
    let mut columns: Vec<Column> = records[0]
        .iter()
        .map(|h| Column { name: h.clone(), values: Vec::with_capacity(records.len() - 1) })
        .collect();
    for (i, rec) in records.into_iter().enumerate().skip(1) {
        if rec.len() != width {
            return Err(CsvError::RaggedRow { record: i, found: rec.len(), expected: width });
        }
        for (col, v) in columns.iter_mut().zip(rec) {
            col.values.push(v);
        }
    }
    Ok(Table { name: name.to_string(), columns })
}

/// Parses CSV text into a [`Table`] tolerantly: ragged records are padded
/// or truncated to the header width and an unterminated quote is closed
/// at end of input, with every intervention recorded in the summary. The
/// output table's row widths therefore always agree with its header. Only
/// input with no header record at all (`CsvError::Empty`) still fails.
pub fn parse_table_repair(name: &str, input: &str) -> Result<(Table, RepairSummary), CsvError> {
    let (records, closed_quote) = split_records(input, true)?;
    let mut summary = RepairSummary { closed_quote, ..Default::default() };
    let header = &records[0];
    let width = header.len();
    let mut columns: Vec<Column> = header
        .iter()
        .map(|h| Column { name: h.clone(), values: Vec::with_capacity(records.len() - 1) })
        .collect();
    for rec in records.iter().skip(1) {
        match rec.len().cmp(&width) {
            std::cmp::Ordering::Less => summary.padded_rows += 1,
            std::cmp::Ordering::Greater => summary.truncated_rows += 1,
            std::cmp::Ordering::Equal => {}
        }
        for (c, col) in columns.iter_mut().enumerate() {
            col.values.push(rec.get(c).cloned().unwrap_or_default());
        }
    }
    Ok((Table { name: name.to_string(), columns }, summary))
}

/// Escapes one field per RFC 4180.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Serializes a [`Table`] to CSV text (header + rows, `\n` line endings).
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.columns.iter().map(|c| escape(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in 0..table.n_rows() {
        let row: Vec<String> = table.columns.iter().map(|c| escape(&c.values[r])).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let t = Table::new("t", vec![Column::new("a", ["1", "2"]), Column::new("b", ["x", "y"])]);
        let text = write_table(&t);
        let back = parse_table("t", &text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn quoting_round_trip() {
        let t = Table::new(
            "t",
            vec![
                Column::new("a,b", ["va,l", "quote\"inside"]),
                Column::new("c", ["multi\nline", "plain"]),
            ],
        );
        let back = parse_table("t", &write_table(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn crlf_tolerated() {
        let t = parse_table("t", "a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), "4");
    }

    #[test]
    fn errors_reported() {
        assert_eq!(parse_table("t", ""), Err(CsvError::Empty));
        assert_eq!(
            parse_table("t", "a,b\n1\n"),
            Err(CsvError::RaggedRow { record: 1, found: 1, expected: 2 })
        );
        assert_eq!(parse_table("t", "a\n\"unclosed\n"), Err(CsvError::UnterminatedQuote));
    }

    #[test]
    fn empty_fields_preserved() {
        let t = parse_table("t", "a,b\n,2\n1,\n").unwrap();
        assert_eq!(t.cell(0, 0), "");
        assert_eq!(t.cell(1, 1), "");
    }

    #[test]
    fn header_only_table() {
        let t = parse_table("t", "a,b\n").unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 2);
    }

    #[test]
    fn repair_pads_and_truncates_ragged_rows() {
        let (t, s) = parse_table_repair("t", "a,b\n1\n2,3,4\n5,6\n").unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.cell(0, 0), "1");
        assert_eq!(t.cell(0, 1), "", "short row padded with empty fields");
        assert_eq!(t.cell(1, 1), "3", "long row truncated to header width");
        assert_eq!(s, RepairSummary { padded_rows: 1, truncated_rows: 1, closed_quote: false });
        assert!(!s.is_clean());
    }

    #[test]
    fn repair_closes_unterminated_quote() {
        let (t, s) = parse_table_repair("t", "a\n\"unclosed\n").unwrap();
        assert!(s.closed_quote);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 0), "unclosed\n", "quoted newline kept, quote closed at EOF");
    }

    #[test]
    fn repair_of_well_formed_input_is_clean_and_identical() {
        let text = "a,b\n1,2\n\"x,y\",z\n";
        let strict = parse_table("t", text).unwrap();
        let (repaired, s) = parse_table_repair("t", text).unwrap();
        assert_eq!(strict, repaired);
        assert!(s.is_clean());
    }

    #[test]
    fn repair_still_rejects_headerless_input() {
        assert_eq!(parse_table_repair("t", ""), Err(CsvError::Empty));
    }

    /// Feeds `input` in `step`-char pieces, draining along the way.
    fn split_incremental(
        input: &str,
        step: usize,
        repair: bool,
    ) -> Result<(Vec<Vec<String>>, bool), CsvError> {
        let chars: Vec<char> = input.chars().collect();
        let mut s = RecordSplitter::new();
        let mut done = Vec::new();
        for piece in chars.chunks(step.max(1)) {
            s.feed(&piece.iter().collect::<String>());
            done.extend(s.drain());
        }
        let (tail, closed) = s.finish(repair)?;
        done.extend(tail);
        Ok((done, closed))
    }

    #[test]
    fn incremental_splitter_matches_batch_at_every_feed_size() {
        // Escaped quotes, quoted newlines/commas, CRLF, multi-byte chars,
        // trailing unterminated field — every boundary-sensitive shape.
        let inputs = [
            "a,b\n1,2\n3,4\n",
            "a,b\r\n\"x,\"\"y\"\"\",z\r\ntail,end",
            "h\n\"multi\nline é 漢\",\n",
            "a\n\"\"\"\"\n",
            "solo",
            "a,b\n,\n",
        ];
        for input in inputs {
            for repair in [false, true] {
                let expect = split_records(input, repair);
                for step in 1..=input.chars().count() {
                    assert_eq!(
                        split_incremental(input, step, repair),
                        expect,
                        "input {input:?} step {step} repair {repair}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_splitter_matches_batch_on_malformed_input() {
        for input in ["", "a\n\"unclosed\n", "\"open"] {
            for repair in [false, true] {
                for step in 1..=input.chars().count().max(1) {
                    assert_eq!(
                        split_incremental(input, step, repair),
                        split_records(input, repair),
                        "input {input:?} step {step} repair {repair}"
                    );
                }
            }
        }
    }
}
