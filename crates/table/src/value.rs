//! Cell value helpers: null conventions, numeric parsing and data type
//! inference.
//!
//! The paper treats cells as opaque strings; detectors decide per column
//! whether a numeric interpretation exists (Gaussian outliers, Eq. 3) or
//! whether the value is "missing". These conventions are centralized here so
//! every detector, baseline and generator agrees on them.

/// Inferred syntactic type of a cell value or a whole column.
///
/// Used by the `+SF` syntactic-folding variant (paper §4.5.1) and by the
/// Deequ-style constraint suggester, both of which branch on column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Empty / NULL-like values.
    Null,
    /// Parses as a signed integer.
    Integer,
    /// Parses as a float but not an integer.
    Float,
    /// Matches one of the recognized date shapes (e.g. `1994-07-05`,
    /// `Dec 21, 1937`, `13/11/1940`).
    Date,
    /// Everything else.
    Text,
}

/// Strings that the whole system treats as a missing value.
///
/// BART (the paper's error generator) injects empty strings and literal
/// `NULL` tokens; the Quintet datasets additionally contain `N/A` style
/// markers.
pub const NULL_TOKENS: &[&str] =
    &["", "null", "NULL", "Null", "N/A", "n/a", "NA", "nan", "NaN", "?"];

/// Returns `true` if `s` is one of the recognized missing-value tokens.
pub fn is_null(s: &str) -> bool {
    let t = s.trim();
    NULL_TOKENS.contains(&t)
}

/// Attempts to parse a cell as `f64`, tolerating surrounding whitespace and
/// thousands separators (`1,234.5`) but *not* stray currency symbols — a
/// `$4,360,000` in a numeric column is precisely the kind of formatting
/// error the paper's detectors must be able to see.
pub fn as_f64(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    // Fast path: plain parse.
    if let Ok(v) = t.parse::<f64>() {
        return v.is_finite().then_some(v);
    }
    // Tolerate `1,234,567.8` style separators: strip commas that sit
    // between digits, then retry.
    if t.contains(',') {
        let stripped: String = t.chars().filter(|c| *c != ',').collect();
        let looks_numeric = stripped
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'));
        if looks_numeric {
            if let Ok(v) = stripped.parse::<f64>() {
                return v.is_finite().then_some(v);
            }
        }
    }
    None
}

/// Returns `true` if the value parses as a signed integer (after trimming).
pub fn is_integer(s: &str) -> bool {
    s.trim().parse::<i64>().is_ok()
}

/// Crude date-shape recognizer covering the formats that appear in the
/// paper's running example and in the lake generators:
/// `YYYY-MM-DD`, `DD/MM/YYYY`, `MM/DD/YYYY`, and `Mon DD, YYYY`.
pub fn looks_like_date(s: &str) -> bool {
    let t = s.trim();
    if t.is_empty() {
        return false;
    }
    let bytes = t.as_bytes();
    let all_digits = |r: &str| !r.is_empty() && r.bytes().all(|b| b.is_ascii_digit());
    // YYYY-MM-DD
    if t.len() == 10 && bytes[4] == b'-' && bytes[7] == b'-' {
        let (y, m, d) = (&t[0..4], &t[5..7], &t[8..10]);
        return all_digits(y) && all_digits(m) && all_digits(d);
    }
    // DD/MM/YYYY or MM/DD/YYYY
    if t.len() == 10 && bytes[2] == b'/' && bytes[5] == b'/' {
        let (a, b, c) = (&t[0..2], &t[3..5], &t[6..10]);
        return all_digits(a) && all_digits(b) && all_digits(c);
    }
    // `Mon DD, YYYY` e.g. "Dec 21, 1937"
    const MONTHS: &[&str] =
        &["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
    if let Some(rest) = MONTHS.iter().find_map(|m| t.strip_prefix(m)) {
        let rest = rest.trim_start();
        if let Some((day, year)) = rest.split_once(", ") {
            return all_digits(day) && all_digits(year) && year.len() == 4;
        }
    }
    false
}

/// Infers the [`DataType`] of a single value.
pub fn infer_type(s: &str) -> DataType {
    if is_null(s) {
        DataType::Null
    } else if is_integer(s) {
        DataType::Integer
    } else if as_f64(s).is_some() {
        DataType::Float
    } else if looks_like_date(s) {
        DataType::Date
    } else {
        DataType::Text
    }
}

/// Infers the dominant type of a column: the most frequent non-null value
/// type, falling back to [`DataType::Text`] for all-null columns.
///
/// Majority (rather than unanimous) typing is what lets a numeric column
/// with a few injected typos still be treated as numeric by the Gaussian
/// outlier detectors — exactly the situation error detection cares about.
pub fn infer_column_type<'a>(values: impl IntoIterator<Item = &'a str>) -> DataType {
    let mut counts = [0usize; 4]; // Integer, Float, Date, Text
    for v in values {
        match infer_type(v) {
            DataType::Null => {}
            DataType::Integer => counts[0] += 1,
            DataType::Float => counts[1] += 1,
            DataType::Date => counts[2] += 1,
            DataType::Text => counts[3] += 1,
        }
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return DataType::Text;
    }
    let (best, &n) = counts.iter().enumerate().max_by_key(|(_, n)| **n).expect("non-empty");
    // Integers mixed with floats read as a float column.
    if best == 0 && counts[1] > 0 && counts[0] + counts[1] > total / 2 {
        return DataType::Float;
    }
    let _ = n;
    match best {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Date,
        _ => DataType::Text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tokens_recognized() {
        for t in ["", "  ", "NULL", "null", "N/A", "nan"] {
            assert!(is_null(t), "{t:?} should be null");
        }
        assert!(!is_null("0"));
        assert!(!is_null("none at all"));
    }

    #[test]
    fn numeric_parsing_handles_thousands_separators() {
        assert_eq!(as_f64("1,234.5"), Some(1234.5));
        assert_eq!(as_f64(" 42 "), Some(42.0));
        assert_eq!(as_f64("-3e2"), Some(-300.0));
        assert_eq!(as_f64("28,341,469"), Some(28_341_469.0));
    }

    #[test]
    fn numeric_parsing_rejects_currency_and_text() {
        assert_eq!(as_f64("$4,360,000"), None);
        assert_eq!(as_f64("abc"), None);
        assert_eq!(as_f64(""), None);
        assert_eq!(as_f64("NaN"), None, "non-finite values are not numbers");
        assert_eq!(as_f64("inf"), None);
    }

    #[test]
    fn date_shapes() {
        assert!(looks_like_date("1994-07-05"));
        assert!(looks_like_date("13/11/1940"));
        assert!(looks_like_date("Dec 21, 1937"));
        assert!(!looks_like_date("21 December 1937"));
        assert!(!looks_like_date("1994"));
        assert!(!looks_like_date(""));
    }

    #[test]
    fn scalar_type_inference() {
        assert_eq!(infer_type("12"), DataType::Integer);
        assert_eq!(infer_type("12.5"), DataType::Float);
        assert_eq!(infer_type("Dec 21, 1937"), DataType::Date);
        assert_eq!(infer_type("Chelsea FC"), DataType::Text);
        assert_eq!(infer_type("NULL"), DataType::Null);
    }

    #[test]
    fn column_type_is_majority_not_unanimous() {
        let col = ["24", "23", "30", "1995", "thirty", "31"];
        assert_eq!(infer_column_type(col.iter().copied()), DataType::Integer);
        let mixed = ["1.5", "2", "3.25", "4"];
        assert_eq!(infer_column_type(mixed.iter().copied()), DataType::Float);
        let empty: [&str; 0] = [];
        assert_eq!(infer_column_type(empty.iter().copied()), DataType::Text);
        let nulls = ["", "NULL"];
        assert_eq!(infer_column_type(nulls.iter().copied()), DataType::Text);
    }
}
