//! Out-of-core table access: chunked CSV reads and a columnar on-disk
//! layout, both behind the [`ChunkSource`] byte-range seam.
//!
//! The scale tiers (ROADMAP item 2) generate lakes that must never be
//! materialized whole. This module keeps the `matelda-table` API the
//! unit of truth while letting storage stream:
//!
//! * [`ChunkSource`] — the minimal byte-range I/O the out-of-core path
//!   needs. `matelda-ckpt` implements it for its fault-injectable `Vfs`,
//!   so every chunked read below is covered by the storage fault matrix
//!   for free; [`StdFs`] is the dependency-free direct implementation.
//! * [`read_table_csv_chunked`] — parses a CSV file in fixed-size byte
//!   chunks (UTF-8 sequences and quoted records may straddle chunk
//!   boundaries) into the *identical* [`Table`] that
//!   [`csv::parse_table`](crate::csv::parse_table) builds from the whole
//!   file.
//! * The `.mtc` columnar layout — one file per table, values
//!   length-prefixed per column, so a single column (or one chunk of
//!   one column) can be read without touching the rest of the table.
//! * [`columnar_lake_fingerprint`] — streams the exact byte sequence of
//!   [`lake_fingerprint`](crate::fingerprint::lake_fingerprint) out of
//!   columnar files chunk by chunk: the in-memory / out-of-core
//!   equivalence contract starts here.
//!
//! Everything is little-endian and versioned; format drift is an error,
//! not a misparse.

use crate::csv::{table_from_records, CsvError, RecordSplitter};
use crate::fingerprint::Fnv1a;
use crate::lake::Lake;
use crate::table::{Column, Table};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of a columnar `.mtc` table file.
pub const COLUMNAR_MAGIC: &[u8; 4] = b"MTCT";
/// Version of the columnar layout; bump on any format change.
pub const COLUMNAR_VERSION: u32 = 1;
/// File extension of columnar table files.
pub const COLUMNAR_EXT: &str = "mtc";
/// Default read granularity (64 KiB) when a caller has no opinion.
pub const DEFAULT_CHUNK_LEN: usize = 64 * 1024;

/// The byte-range storage seam the out-of-core path reads and writes
/// through. `matelda-table` cannot depend on `matelda-ckpt` (the
/// dependency points the other way), so the fault-injectable VFS plugs
/// in from above via this trait; [`StdFs`] is the plain implementation.
pub trait ChunkSource {
    /// Length of the file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Reads up to `len` bytes at `offset`; short reads only at EOF.
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Atomically replaces `path` with `bytes` (write-then-rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// The entries of `dir` (files only, any order; callers sort).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Direct `std::fs` implementation of [`ChunkSource`] — no fault
/// injection, no budgets; used by tests and standalone tools.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl ChunkSource for StdFs {
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        std::fs::metadata(path).map(|m| m.len())
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("mtc.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        Ok(std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect())
    }
}

/// Errors of the chunked/columnar layer.
#[derive(Debug)]
pub enum ChunkedError {
    /// Underlying storage failed.
    Io(io::Error),
    /// The CSV content was malformed (same taxonomy as whole-file parse).
    Csv(CsvError),
    /// The columnar file (or a CSV chunk) violated the format contract.
    Corrupt(String),
}

impl fmt::Display for ChunkedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkedError::Io(e) => write!(f, "chunked io: {e}"),
            ChunkedError::Csv(e) => write!(f, "chunked csv: {e}"),
            ChunkedError::Corrupt(what) => write!(f, "corrupt columnar data: {what}"),
        }
    }
}

impl std::error::Error for ChunkedError {}

impl From<io::Error> for ChunkedError {
    fn from(e: io::Error) -> Self {
        ChunkedError::Io(e)
    }
}

impl From<CsvError> for ChunkedError {
    fn from(e: CsvError) -> Self {
        ChunkedError::Csv(e)
    }
}

/// Reads a CSV file through `src` in `chunk_len`-byte pieces, returning
/// the same records as [`crate::csv::parse_records`] over the whole
/// file. Multi-byte UTF-8 sequences and quoted records may straddle
/// chunk boundaries; both are carried across feeds. In repair mode an
/// unterminated quote at EOF is closed (flag returned) instead of
/// erroring.
pub fn read_csv_records_chunked(
    src: &dyn ChunkSource,
    path: &Path,
    chunk_len: usize,
    repair: bool,
) -> Result<(Vec<Vec<String>>, bool), ChunkedError> {
    let chunk_len = chunk_len.max(1);
    let total = src.file_len(path)?;
    let mut splitter = RecordSplitter::new();
    let mut done: Vec<Vec<String>> = Vec::new();
    let mut carry: Vec<u8> = Vec::new();
    let mut off = 0u64;
    while off < total {
        let want = chunk_len.min((total - off) as usize);
        let bytes = src.read_range(path, off, want)?;
        if bytes.is_empty() {
            // File shrank under us; treat what we have as the whole file.
            break;
        }
        off += bytes.len() as u64;
        carry.extend_from_slice(&bytes);
        match std::str::from_utf8(&carry) {
            Ok(s) => {
                splitter.feed(s);
                carry.clear();
            }
            Err(e) if e.error_len().is_none() => {
                // Incomplete multi-byte sequence at the chunk edge: feed
                // the valid prefix, carry the tail (≤ 3 bytes) forward.
                let valid = e.valid_up_to();
                splitter.feed(std::str::from_utf8(&carry[..valid]).expect("valid prefix"));
                carry.drain(..valid);
            }
            Err(e) => {
                return Err(ChunkedError::Corrupt(format!(
                    "invalid utf-8 at byte {}",
                    off - bytes.len() as u64 + e.valid_up_to() as u64
                )));
            }
        }
        done.extend(splitter.drain());
    }
    if !carry.is_empty() {
        return Err(ChunkedError::Corrupt("invalid utf-8: truncated sequence at eof".into()));
    }
    // `finish` counts drained records too, so Empty here really means
    // the whole file produced nothing.
    let (tail, closed_quote) = splitter.finish(repair).map_err(ChunkedError::Csv)?;
    done.extend(tail);
    Ok((done, closed_quote))
}

/// Parses one CSV file into a [`Table`] via chunked reads: identical
/// output (and identical error taxonomy) to loading the whole file and
/// calling [`crate::csv::parse_table`].
pub fn read_table_csv_chunked(
    src: &dyn ChunkSource,
    path: &Path,
    name: &str,
    chunk_len: usize,
) -> Result<Table, ChunkedError> {
    let (records, _) = read_csv_records_chunked(src, path, chunk_len, false)?;
    Ok(table_from_records(name, records)?)
}

/// The `.mtc` path of table `name` inside `dir`.
pub fn columnar_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.{COLUMNAR_EXT}"))
}

/// The `.mtc` files of `dir`, sorted by file name — the same ordering
/// contract as [`crate::io::csv_paths_sorted`], so table indices line up
/// between a CSV lake and its columnar conversion. (Table names must not
/// contain `.` for the two orders to agree; lake generators never emit
/// dotted names.)
pub fn columnar_paths_sorted(src: &dyn ChunkSource, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = src
        .read_dir(dir)?
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == COLUMNAR_EXT))
        .collect();
    paths.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    Ok(paths)
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Serializes one table into the columnar `.mtc` byte layout:
///
/// ```text
/// "MTCT" | version:u32 | dir_len:u64 |
/// directory { name:str, n_cols:u64, n_rows:u64,
///             per col { name:str, data_off:u64, data_len:u64 } } |
/// per col: n_rows × { len:u64 | utf-8 bytes }
/// ```
///
/// (`str` = u64 length + bytes; offsets are absolute file offsets.)
pub fn encode_table_columnar(table: &Table) -> Vec<u8> {
    // Directory size must be known before offsets can be absolute:
    // lay it out once with zero offsets, then patch.
    let mut dir_blob = Vec::new();
    push_str(&mut dir_blob, &table.name);
    push_u64(&mut dir_blob, table.n_cols() as u64);
    push_u64(&mut dir_blob, table.n_rows() as u64);
    let mut patch_at = Vec::with_capacity(table.n_cols());
    for col in &table.columns {
        push_str(&mut dir_blob, &col.name);
        patch_at.push(dir_blob.len());
        push_u64(&mut dir_blob, 0); // data_off, patched below
        push_u64(&mut dir_blob, 0); // data_len, patched below
    }
    let data_base = 4 + 4 + 8 + dir_blob.len() as u64;
    let mut data = Vec::new();
    for (c, col) in table.columns.iter().enumerate() {
        let off = data_base + data.len() as u64;
        for v in &col.values {
            push_str(&mut data, v);
        }
        let len = data_base + data.len() as u64 - off;
        dir_blob[patch_at[c]..patch_at[c] + 8].copy_from_slice(&off.to_le_bytes());
        dir_blob[patch_at[c] + 8..patch_at[c] + 16].copy_from_slice(&len.to_le_bytes());
    }
    let mut out = Vec::with_capacity(16 + dir_blob.len() + data.len());
    out.extend_from_slice(COLUMNAR_MAGIC);
    out.extend_from_slice(&COLUMNAR_VERSION.to_le_bytes());
    push_u64(&mut out, dir_blob.len() as u64);
    out.extend_from_slice(&dir_blob);
    out.extend_from_slice(&data);
    out
}

/// Writes `table` as `<dir>/<table name>.mtc` (atomic replace).
pub fn write_table_columnar(
    src: &dyn ChunkSource,
    dir: &Path,
    table: &Table,
) -> Result<PathBuf, ChunkedError> {
    src.create_dir_all(dir)?;
    let path = columnar_path(dir, &table.name);
    src.write_atomic(&path, &encode_table_columnar(table))?;
    Ok(path)
}

/// Per-column directory entry of an open columnar file.
#[derive(Debug, Clone)]
struct ColMeta {
    name: String,
    off: u64,
    len: u64,
}

/// An open columnar table file: the directory is resident, cell data is
/// read on demand in byte ranges.
pub struct ColumnarReader<'a> {
    src: &'a dyn ChunkSource,
    path: PathBuf,
    name: String,
    n_rows: usize,
    cols: Vec<ColMeta>,
}

/// Little-endian field cursor over a resident directory blob.
struct DirCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DirCursor<'a> {
    fn u64(&mut self) -> Result<u64, ChunkedError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(ChunkedError::Corrupt("directory truncated".into()));
        }
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn str(&mut self) -> Result<String, ChunkedError> {
        let len = self.u64()? as usize;
        let end = self.pos + len;
        if end > self.bytes.len() {
            return Err(ChunkedError::Corrupt("directory string truncated".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| ChunkedError::Corrupt("directory string not utf-8".into()))?;
        self.pos = end;
        Ok(s.to_string())
    }
}

impl<'a> ColumnarReader<'a> {
    /// Opens a columnar file: validates magic/version, reads the
    /// directory (two small ranged reads), leaves cell data on disk.
    pub fn open(src: &'a dyn ChunkSource, path: &Path) -> Result<Self, ChunkedError> {
        let prelude = src.read_range(path, 0, 16)?;
        if prelude.len() < 16 {
            return Err(ChunkedError::Corrupt("file shorter than prelude".into()));
        }
        if &prelude[..4] != COLUMNAR_MAGIC {
            return Err(ChunkedError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(prelude[4..8].try_into().expect("4 bytes"));
        if version != COLUMNAR_VERSION {
            return Err(ChunkedError::Corrupt(format!(
                "version {version}, expected {COLUMNAR_VERSION}"
            )));
        }
        let dir_len = u64::from_le_bytes(prelude[8..16].try_into().expect("8 bytes")) as usize;
        let file_len = src.file_len(path)?;
        if 16 + dir_len as u64 > file_len {
            return Err(ChunkedError::Corrupt("directory extends past eof".into()));
        }
        let dir_blob = src.read_range(path, 16, dir_len)?;
        if dir_blob.len() < dir_len {
            return Err(ChunkedError::Corrupt("directory short read".into()));
        }
        let mut cur = DirCursor { bytes: &dir_blob, pos: 0 };
        let name = cur.str()?;
        let n_cols = cur.u64()? as usize;
        let n_rows = cur.u64()? as usize;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col_name = cur.str()?;
            let off = cur.u64()?;
            let len = cur.u64()?;
            if off.checked_add(len).is_none_or(|end| end > file_len) {
                return Err(ChunkedError::Corrupt(format!(
                    "column {col_name:?} data range [{off}, +{len}) past eof"
                )));
            }
            cols.push(ColMeta { name: col_name, off, len });
        }
        Ok(Self { src, path: path.to_path_buf(), name, n_rows, cols })
    }

    /// Table name stored in the file (not derived from the path).
    pub fn table_name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows (shared by all columns).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.n_rows * self.cols.len()
    }

    /// Name of column `c`.
    pub fn column_name(&self, c: usize) -> &str {
        &self.cols[c].name
    }

    /// Streams every value of column `c` in row order through `f`,
    /// reading the column's byte range in `chunk_len`-sized pieces; no
    /// more than one chunk (plus one value) is resident at a time.
    pub fn for_each_value(
        &self,
        c: usize,
        chunk_len: usize,
        mut f: impl FnMut(&str),
    ) -> Result<(), ChunkedError> {
        let chunk_len = chunk_len.max(1);
        let col = &self.cols[c];
        let end = col.off + col.len;
        let mut pos = col.off;
        let mut buf: Vec<u8> = Vec::new();
        let mut cursor = 0usize;
        for row in 0..self.n_rows {
            // Ensure the 8-byte length, then the value bytes, topping the
            // buffer up from disk as needed.
            while buf.len() - cursor < 8 {
                fill(self.src, &self.path, &mut buf, &mut cursor, &mut pos, end, chunk_len)
                    .map_err(|e| truncated(e, c, row))?;
            }
            let len =
                u64::from_le_bytes(buf[cursor..cursor + 8].try_into().expect("8 bytes")) as usize;
            cursor += 8;
            while buf.len() - cursor < len {
                fill(self.src, &self.path, &mut buf, &mut cursor, &mut pos, end, chunk_len)
                    .map_err(|e| truncated(e, c, row))?;
            }
            let value = std::str::from_utf8(&buf[cursor..cursor + len])
                .map_err(|_| ChunkedError::Corrupt(format!("column {c} row {row} not utf-8")))?;
            f(value);
            cursor += len;
        }
        Ok(())
    }

    /// Materializes column `c` via chunked reads.
    pub fn read_column(&self, c: usize, chunk_len: usize) -> Result<Column, ChunkedError> {
        let mut values = Vec::with_capacity(self.n_rows);
        self.for_each_value(c, chunk_len, |v| values.push(v.to_string()))?;
        Ok(Column { name: self.cols[c].name.clone(), values })
    }

    /// Materializes the whole table via chunked reads.
    pub fn read_table(&self, chunk_len: usize) -> Result<Table, ChunkedError> {
        let mut columns = Vec::with_capacity(self.cols.len());
        for c in 0..self.cols.len() {
            columns.push(self.read_column(c, chunk_len)?);
        }
        Ok(Table { name: self.name.clone(), columns })
    }
}

/// Reads the next chunk of `[pos, end)` into `buf`, compacting consumed
/// bytes first so the buffer stays bounded by one value + one chunk.
fn fill(
    src: &dyn ChunkSource,
    path: &Path,
    buf: &mut Vec<u8>,
    cursor: &mut usize,
    pos: &mut u64,
    end: u64,
    chunk_len: usize,
) -> Result<(), ChunkedError> {
    if *cursor > 0 {
        buf.drain(..*cursor);
        *cursor = 0;
    }
    if *pos >= end {
        return Err(ChunkedError::Corrupt("column data truncated".into()));
    }
    let want = chunk_len.min((end - *pos) as usize);
    let bytes = src.read_range(path, *pos, want)?;
    if bytes.is_empty() {
        return Err(ChunkedError::Corrupt("column data truncated".into()));
    }
    *pos += bytes.len() as u64;
    buf.extend_from_slice(&bytes);
    Ok(())
}

fn truncated(e: ChunkedError, col: usize, row: usize) -> ChunkedError {
    match e {
        ChunkedError::Corrupt(what) => {
            ChunkedError::Corrupt(format!("column {col} row {row}: {what}"))
        }
        other => other,
    }
}

/// Writes every table of `lake` into `dir` as columnar `.mtc` files.
pub fn write_lake_columnar(
    src: &dyn ChunkSource,
    dir: &Path,
    lake: &Lake,
) -> Result<(), ChunkedError> {
    for table in &lake.tables {
        write_table_columnar(src, dir, table)?;
    }
    Ok(())
}

/// Loads a columnar lake directory fully into memory, in file-name
/// order — the columnar analogue of [`crate::io::read_lake_from_dir`].
pub fn read_lake_columnar(
    src: &dyn ChunkSource,
    dir: &Path,
    chunk_len: usize,
) -> Result<Lake, ChunkedError> {
    let mut tables = Vec::new();
    for path in columnar_paths_sorted(src, dir)? {
        tables.push(ColumnarReader::open(src, &path)?.read_table(chunk_len)?);
    }
    Ok(Lake::new(tables))
}

/// Converts a CSV lake directory into a columnar one, one table at a
/// time (chunked CSV read in, atomic `.mtc` write out — the lake itself
/// is never resident). Table names are the CSV file stems, exactly as
/// in [`crate::io::read_lake_from_dir`]. Returns the number of tables
/// converted.
pub fn csv_dir_to_columnar(
    src: &dyn ChunkSource,
    csv_dir: &Path,
    out_dir: &Path,
    chunk_len: usize,
) -> Result<usize, ChunkedError> {
    let mut paths: Vec<PathBuf> = src
        .read_dir(csv_dir)?
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    let mut n = 0;
    for path in paths {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
        let table = read_table_csv_chunked(src, &path, &name, chunk_len)?;
        write_table_columnar(src, out_dir, &table)?;
        n += 1;
    }
    Ok(n)
}

/// Streams the lake fingerprint straight off a columnar directory: the
/// digest equals [`lake_fingerprint`](crate::fingerprint::lake_fingerprint)
/// of the fully materialized lake, but peak memory is one chunk plus one
/// cell value. This is the anchor of the out-of-core equivalence
/// contract (DESIGN.md §14).
pub fn columnar_lake_fingerprint(
    src: &dyn ChunkSource,
    dir: &Path,
    chunk_len: usize,
) -> Result<u64, ChunkedError> {
    let paths = columnar_paths_sorted(src, dir)?;
    let mut h = Fnv1a::new();
    h.write_u64(paths.len() as u64);
    for path in paths {
        let reader = ColumnarReader::open(src, &path)?;
        h.write_str(reader.table_name());
        h.write_u64(reader.n_cols() as u64);
        for c in 0..reader.n_cols() {
            h.write_str(reader.column_name(c));
            h.write_u64(reader.n_rows() as u64);
            reader.for_each_value(c, chunk_len, |v| h.write_str(v))?;
        }
    }
    Ok(h.finish())
}

/// A lake with every table's *shape* (name, header, row count) but empty
/// cell values — the stage inputs the post-featurize pipeline actually
/// reads under the default configuration. Built from columnar metadata
/// alone: no cell data is read at all.
pub fn skeleton_lake(src: &dyn ChunkSource, dir: &Path) -> Result<Lake, ChunkedError> {
    let mut tables = Vec::new();
    for path in columnar_paths_sorted(src, dir)? {
        let reader = ColumnarReader::open(src, &path)?;
        let columns = (0..reader.n_cols())
            .map(|c| Column {
                name: reader.column_name(c).to_string(),
                values: vec![String::new(); reader.n_rows()],
            })
            .collect();
        tables.push(Table { name: reader.table_name().to_string(), columns });
    }
    Ok(Lake::new(tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{parse_table, write_table};
    use crate::fingerprint::lake_fingerprint;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("matelda_chunked_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn spiky_table() -> Table {
        Table::new(
            "spiky",
            vec![
                Column::new("a,b", ["va,l", "quote\"inside", "", "plain"]),
                Column::new("c", ["multi\nline", "crème brûlée", "naïve—em", "42"]),
                Column::new("d\"q", ["x", "\"\"", ",", "\r\nmix"]),
            ],
        )
    }

    #[test]
    fn chunked_csv_read_matches_whole_file_parse_at_every_chunk_size() {
        let dir = tmpdir("csv_eq");
        let table = spiky_table();
        let text = write_table(&table);
        let path = dir.join("spiky.csv");
        std::fs::write(&path, &text).expect("write");
        let expect = parse_table("spiky", &text).expect("whole-file parse");
        // Chunk size 1 forces every boundary: mid-UTF-8, mid-quote,
        // between the two quotes of an escaped pair, mid-CRLF.
        for chunk_len in [1, 2, 3, 5, 7, 16, 64, text.len(), text.len() + 100] {
            let got = read_table_csv_chunked(&StdFs, &path, "spiky", chunk_len)
                .unwrap_or_else(|e| panic!("chunk_len {chunk_len}: {e}"));
            assert_eq!(got, expect, "chunk_len {chunk_len}");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn chunked_csv_read_reports_the_same_errors_as_whole_file_parse() {
        let dir = tmpdir("csv_err");
        for (tag, text) in [("empty", ""), ("ragged", "a,b\n1\n"), ("quote", "a\n\"unclosed\n")] {
            let path = dir.join(format!("{tag}.csv"));
            std::fs::write(&path, text).expect("write");
            let whole = parse_table(tag, text).expect_err("whole-file parse fails");
            for chunk_len in [1, 3, 1024] {
                match read_table_csv_chunked(&StdFs, &path, tag, chunk_len) {
                    Err(ChunkedError::Csv(e)) => assert_eq!(e, whole, "{tag} chunk {chunk_len}"),
                    other => panic!("{tag} chunk {chunk_len}: expected Csv error, got {other:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn columnar_round_trip_preserves_the_table_exactly() {
        let dir = tmpdir("roundtrip");
        let table = spiky_table();
        let path = write_table_columnar(&StdFs, &dir, &table).expect("write");
        let reader = ColumnarReader::open(&StdFs, &path).expect("open");
        assert_eq!(reader.table_name(), "spiky");
        assert_eq!(reader.n_cols(), 3);
        assert_eq!(reader.n_rows(), 4);
        assert_eq!(reader.n_cells(), 12);
        for chunk_len in [1, 2, 9, 64, 1 << 20] {
            assert_eq!(reader.read_table(chunk_len).expect("read"), table, "chunk {chunk_len}");
        }
        // Single-column access agrees too.
        let col = reader.read_column(1, 3).expect("column");
        assert_eq!(col, table.columns[1]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_and_header_only_tables_round_trip() {
        let dir = tmpdir("edge");
        for table in [
            Table::new("empty", vec![]),
            Table::new("header_only", vec![Column::new("a", Vec::<String>::new())]),
        ] {
            let path = write_table_columnar(&StdFs, &dir, &table).expect("write");
            let back =
                ColumnarReader::open(&StdFs, &path).expect("open").read_table(7).expect("read");
            assert_eq!(back, table);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn streaming_fingerprint_matches_in_memory_lake_fingerprint() {
        let dir = tmpdir("fp");
        let lake = Lake::new(vec![
            Table::new("b", vec![Column::new("z", ["7", "8"])]),
            spiky_table(),
            Table::new("z_last", vec![Column::new("only", ["一", "二", "三"])]),
        ]);
        write_lake_columnar(&StdFs, &dir, &lake).expect("write lake");
        // Note: columnar_paths_sorted orders by file name; lake table
        // names here are already in sorted order to match.
        for chunk_len in [1, 5, 4096] {
            assert_eq!(
                columnar_lake_fingerprint(&StdFs, &dir, chunk_len).expect("stream fp"),
                lake_fingerprint(&lake),
                "chunk {chunk_len}"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn csv_dir_conversion_preserves_lake_and_fingerprint() {
        let csv_dir = tmpdir("conv_csv");
        let col_dir = tmpdir("conv_mtc");
        let lake = Lake::new(vec![
            Table::new("a_first", vec![Column::new("x", ["1", "2"]), Column::new("y", ["p", "q"])]),
            spiky_table(),
        ]);
        crate::io::write_lake_to_dir(&lake, &csv_dir).expect("write csv");
        let n = csv_dir_to_columnar(&StdFs, &csv_dir, &col_dir, 11).expect("convert");
        assert_eq!(n, 2);
        let back = read_lake_columnar(&StdFs, &col_dir, 13).expect("read back");
        let via_csv = crate::io::read_lake_from_dir(&csv_dir).expect("read csv");
        assert_eq!(back, via_csv);
        assert_eq!(
            columnar_lake_fingerprint(&StdFs, &col_dir, 17).expect("stream fp"),
            lake_fingerprint(&via_csv)
        );
        std::fs::remove_dir_all(&csv_dir).expect("cleanup");
        std::fs::remove_dir_all(&col_dir).expect("cleanup");
    }

    #[test]
    fn skeleton_lake_has_shapes_but_no_values() {
        let dir = tmpdir("skeleton");
        let lake = Lake::new(vec![spiky_table()]);
        write_lake_columnar(&StdFs, &dir, &lake).expect("write");
        let skel = skeleton_lake(&StdFs, &dir).expect("skeleton");
        assert_eq!(skel.n_tables(), 1);
        assert_eq!(skel.tables[0].name, "spiky");
        assert_eq!(skel.tables[0].n_rows(), 4);
        assert_eq!(skel.tables[0].header(), lake.tables[0].header());
        assert!(skel.tables[0].columns.iter().all(|c| c.values.iter().all(String::is_empty)));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_columnar_files_are_rejected_not_misparsed() {
        let dir = tmpdir("corrupt");
        let table = spiky_table();
        let bytes = encode_table_columnar(&table);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("truncated", bytes[..bytes.len() / 2].to_vec()),
            ("bad_magic", {
                let mut b = bytes.clone();
                b[0] ^= 0xFF;
                b
            }),
            ("bad_version", {
                let mut b = bytes.clone();
                b[4] = 0xEE;
                b
            }),
            ("short", bytes[..10].to_vec()),
        ];
        for (tag, b) in cases {
            let path = dir.join(format!("{tag}.mtc"));
            std::fs::write(&path, &b).expect("write");
            let res = ColumnarReader::open(&StdFs, &path).and_then(|r| r.read_table(64));
            assert!(
                matches!(res, Err(ChunkedError::Corrupt(_))),
                "{tag}: expected Corrupt, got {:?}",
                res.map(|t| t.name)
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        // Arbitrary tables built from a hostile palette (quotes, commas,
        // newlines, CRLF, multi-byte UTF-8) survive: (a) CSV chunked
        // read == whole-file parse at an arbitrary chunk size — chunk
        // boundaries land inside quoted records and UTF-8 sequences;
        // (b) columnar round trip is exact; (c) the streaming columnar
        // fingerprint equals the in-memory one.
        #[test]
        fn chunked_paths_are_equivalent_to_in_memory(
            cols in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 1..9),
                1..5,
            ),
            chunk_len in 1usize..40,
            case_tag in 0u64..1_000_000,
        ) {
            const PALETTE: [&str; 12] = [
                "plain", "a,b", "q\"q", "\"\"", "nl\nnl", "crlf\r\nx",
                "é", "漢字", "", " lead", "trail ", ",\",\n\"",
            ];
            let n_rows = cols.iter().map(Vec::len).min().unwrap_or(0);
            let table = Table::new(
                "t",
                cols.iter()
                    .enumerate()
                    .map(|(i, picks)| {
                        Column::new(
                            format!("c{i}"),
                            picks[..n_rows].iter().map(|&p| PALETTE[p].to_string()),
                        )
                    })
                    .collect(),
            );

            let dir = tmpdir(&format!("prop_{case_tag}"));

            // (a) CSV chunked read equivalence.
            let text = write_table(&table);
            let csv_path = dir.join("t.csv");
            std::fs::write(&csv_path, &text).expect("write csv");
            let whole = parse_table("t", &text).expect("whole-file parse");
            let chunked = read_table_csv_chunked(&StdFs, &csv_path, "t", chunk_len)
                .expect("chunked parse");
            proptest::prop_assert_eq!(&chunked, &whole);

            // (b) columnar round trip.
            let mtc = write_table_columnar(&StdFs, &dir, &table).expect("write mtc");
            let back = ColumnarReader::open(&StdFs, &mtc)
                .expect("open")
                .read_table(chunk_len)
                .expect("read");
            proptest::prop_assert_eq!(&back, &table);

            // (c) streaming fingerprint equivalence.
            let lake = Lake::new(vec![table.clone()]);
            proptest::prop_assert_eq!(
                columnar_lake_fingerprint(&StdFs, &dir, chunk_len).expect("stream fp"),
                lake_fingerprint(&lake)
            );

            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }
}
