//! Lakes: ordered sets of tables with global cell addressing.

use crate::table::Table;

/// Globally addresses one cell inside a [`Lake`]: `(table, row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Index of the table within the lake.
    pub table: usize,
    /// Row (tuple) index within the table.
    pub row: usize,
    /// Column (attribute) index within the table.
    pub col: usize,
}

impl CellId {
    /// Convenience constructor.
    pub fn new(table: usize, row: usize, col: usize) -> Self {
        Self { table, row, col }
    }
}

/// A set of tables — the unit the multi-table error detection problem
/// (paper §2.2) is defined over.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lake {
    /// The member tables, in a stable order.
    pub tables: Vec<Table>,
}

impl Lake {
    /// Creates a lake from tables.
    pub fn new(tables: Vec<Table>) -> Self {
        Self { tables }
    }

    /// Number of tables `|S|`.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total number of cells across all tables.
    pub fn n_cells(&self) -> usize {
        self.tables.iter().map(Table::n_cells).sum()
    }

    /// Total number of columns across all tables — the denominator of the
    /// per-domain-fold budget split (Alg. 1 line 12).
    pub fn n_columns(&self) -> usize {
        self.tables.iter().map(Table::n_cols).sum()
    }

    /// Total number of rows (tuples) across all tables.
    pub fn n_rows(&self) -> usize {
        self.tables.iter().map(Table::n_rows).sum()
    }

    /// The cell value addressed by `id`.
    pub fn cell(&self, id: CellId) -> &str {
        self.tables[id.table].cell(id.row, id.col)
    }

    /// Iterates over every cell id of the lake, table-major.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.tables.iter().enumerate().flat_map(|(t, tab)| {
            let (rows, cols) = (tab.n_rows(), tab.n_cols());
            (0..rows).flat_map(move |r| (0..cols).map(move |c| CellId::new(t, r, c)))
        })
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// A sub-lake restricted to the given table indices, preserving order.
    /// Returned tables keep their identity; the mapping back to original
    /// indices is the input slice itself.
    pub fn project(&self, table_indices: &[usize]) -> Lake {
        Lake::new(table_indices.iter().map(|&i| self.tables[i].clone()).collect())
    }
}

impl std::ops::Index<usize> for Lake {
    type Output = Table;
    fn index(&self, i: usize) -> &Table {
        &self.tables[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn lake() -> Lake {
        Lake::new(vec![
            Table::new("a", vec![Column::new("x", ["1", "2"]), Column::new("y", ["3", "4"])]),
            Table::new("b", vec![Column::new("z", ["5"])]),
        ])
    }

    #[test]
    fn counts() {
        let l = lake();
        assert_eq!(l.n_tables(), 2);
        assert_eq!(l.n_cells(), 5);
        assert_eq!(l.n_columns(), 3);
        assert_eq!(l.n_rows(), 3);
    }

    #[test]
    fn cell_addressing() {
        let l = lake();
        assert_eq!(l.cell(CellId::new(0, 1, 1)), "4");
        assert_eq!(l.cell(CellId::new(1, 0, 0)), "5");
        assert_eq!(l[1].name, "b");
    }

    #[test]
    fn cell_ids_cover_every_cell_exactly_once() {
        let l = lake();
        let ids: Vec<_> = l.cell_ids().collect();
        assert_eq!(ids.len(), l.n_cells());
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn lookup_and_projection() {
        let l = lake();
        assert!(l.table_by_name("a").is_some());
        assert!(l.table_by_name("missing").is_none());
        let sub = l.project(&[1]);
        assert_eq!(sub.n_tables(), 1);
        assert_eq!(sub[0].name, "b");
    }
}
