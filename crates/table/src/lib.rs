//! # matelda-table
//!
//! The relational substrate underneath the MaTElDa multi-table error
//! detection system (Ahmadi et al., EDBT 2025).
//!
//! Everything in the paper operates on *sets of tables* ("lakes") whose
//! cells are raw strings: an error is any cell whose serialized value
//! differs from the corresponding ground-truth cell (paper Eq. 1). This
//! crate provides:
//!
//! * [`Table`] — a named, column-major relational instance of string cells,
//! * [`Lake`] — an ordered set of tables with global [`CellId`] addressing,
//! * [`CellMask`] — a per-lake bitset over cells (error masks, predictions),
//! * [`diff`] — ground-truth diffing that turns a (dirty, clean) lake pair
//!   into the error set `E` of Eq. 1,
//! * [`metrics`] — precision / recall / F1 and per-error-type recall used
//!   throughout the paper's evaluation (Figures 3–9, Tables 2–3),
//! * [`csv`] — a minimal RFC-4180 reader/writer so lakes round-trip to disk.
//!
//! Cells are deliberately kept as strings: detection happens on the
//! serialized value (`"1995"` in an Age column *is* the error), numeric
//! detectors parse on demand via [`value`] helpers.

pub mod chunked;
pub mod csv;
pub mod diff;
pub mod fingerprint;
pub mod io;
pub mod lake;
pub mod mask;
pub mod metrics;
pub mod oracle;
pub mod profile;
pub mod table;
pub mod value;

pub use chunked::{
    columnar_lake_fingerprint, columnar_paths_sorted, csv_dir_to_columnar, read_lake_columnar,
    read_table_csv_chunked, skeleton_lake, write_lake_columnar, write_table_columnar, ChunkSource,
    ChunkedError, ColumnarReader, StdFs, DEFAULT_CHUNK_LEN,
};
pub use diff::{diff_lakes, diff_tables};
pub use fingerprint::lake_fingerprint;
pub use io::{
    csv_paths_sorted, read_lake_from_dir, read_lake_from_dir_with, write_lake_to_dir, FileIngest,
    FileOutcome, IngestReport, ReadMode, ReadOptions,
};
pub use lake::{CellId, Lake};
pub use mask::CellMask;
pub use metrics::{Confusion, PerTypeRecall, TypeRecall};
pub use oracle::{Labeler, Oracle};
pub use profile::{profile_table, ColumnProfile, NumericSummary};
pub use table::{Column, Table};
pub use value::DataType;
