//! Content fingerprinting of lakes, for checkpoint-manifest validation.
//!
//! A resumed detection run must be re-attached to *exactly* the lake the
//! snapshots were computed from: same tables, same order, same headers,
//! same cell bytes. [`lake_fingerprint`] condenses all of that into one
//! 64-bit FNV-1a digest (the same hash family the embedding and chaos
//! layers use) — platform-independent because it hashes lengths and
//! UTF-8 bytes, never pointers, paths or iteration order of a `HashMap`.
//!
//! The digest is **order-sensitive on purpose**: table indices are part
//! of every artifact (`CellId.table`), so two lakes holding the same
//! tables in a different order are *different* inputs and must not share
//! a fingerprint. Directory ingestion sorts by file name
//! ([`crate::io::read_lake_from_dir`]), which makes the fingerprint of
//! an on-disk lake independent of `readdir` order.

use crate::lake::Lake;
use crate::table::Table;

/// Incremental 64-bit FNV-1a, with length-prefixed writes so that
/// adjacent fields never blur together (`["ab","c"]` ≠ `["a","bc"]`).
#[derive(Debug, Clone)]
pub struct Fnv1a {
    hash: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { hash: Self::OFFSET }
    }

    /// Absorbs raw bytes (no length prefix).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` as its 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a string as length + bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// Absorbs one table: name, column count, then each column's name, row
/// count and cell values, all length-prefixed.
fn write_table(h: &mut Fnv1a, table: &Table) {
    h.write_str(&table.name);
    h.write_u64(table.n_cols() as u64);
    for col in &table.columns {
        h.write_str(&col.name);
        h.write_u64(col.values.len() as u64);
        for v in &col.values {
            h.write_str(v);
        }
    }
}

/// The content fingerprint of a lake: a 64-bit FNV-1a digest over table
/// count, order, names, headers and every cell value. Any change to any
/// of those yields a different fingerprint (up to 64-bit collisions);
/// the digest is identical across platforms and process runs.
pub fn lake_fingerprint(lake: &Lake) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(lake.n_tables() as u64);
    for table in &lake.tables {
        write_table(&mut h, table);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn lake_ab() -> Lake {
        Lake::new(vec![
            Table::new("a", vec![Column::new("x", ["1", "2"]), Column::new("y", ["p", "q"])]),
            Table::new("b", vec![Column::new("z", ["7"])]),
        ])
    }

    #[test]
    fn identical_lakes_share_a_fingerprint() {
        assert_eq!(lake_fingerprint(&lake_ab()), lake_fingerprint(&lake_ab()));
    }

    #[test]
    fn fingerprint_is_stable_across_releases() {
        // Pinned digest: the manifest format depends on this value not
        // drifting. If it changes, bump the checkpoint format version.
        assert_eq!(lake_fingerprint(&lake_ab()), 0xee97_ef6c_3b36_59d2);
    }

    #[test]
    fn any_content_change_changes_the_fingerprint() {
        let base = lake_fingerprint(&lake_ab());
        // One cell changed.
        let mut l = lake_ab();
        l.tables[0].columns[0].values[1] = "3".into();
        assert_ne!(lake_fingerprint(&l), base);
        // A column renamed.
        let mut l = lake_ab();
        l.tables[1].columns[0].name = "w".into();
        assert_ne!(lake_fingerprint(&l), base);
        // A table renamed.
        let mut l = lake_ab();
        l.tables[0].name = "a2".into();
        assert_ne!(lake_fingerprint(&l), base);
    }

    #[test]
    fn table_order_matters() {
        let mut l = lake_ab();
        l.tables.reverse();
        assert_ne!(lake_fingerprint(&l), lake_fingerprint(&lake_ab()));
    }

    #[test]
    fn adjacent_values_do_not_blur() {
        let a = Lake::new(vec![Table::new("t", vec![Column::new("c", ["ab", "c"])])]);
        let b = Lake::new(vec![Table::new("t", vec![Column::new("c", ["a", "bc"])])]);
        assert_ne!(lake_fingerprint(&a), lake_fingerprint(&b));
    }

    #[test]
    fn empty_lake_has_a_fingerprint() {
        let empty = lake_fingerprint(&Lake::default());
        assert_ne!(empty, 0);
        assert_ne!(empty, lake_fingerprint(&lake_ab()));
    }
}
