//! Conformance tests for the unified feature space: on arbitrary tables
//! every vector must be finite, bounded, fixed-dimension and column-type
//! appropriate — the invariants the clustering and classification layers
//! silently rely on.

use matelda_detect::featurize::layout;
use matelda_detect::{featurize_table, FeatureConfig, FEATURE_DIM};
use matelda_table::{Column, DataType, Table};
use matelda_text::SpellChecker;

fn spell() -> SpellChecker {
    SpellChecker::english()
}

fn messy_table() -> Table {
    Table::new(
        "messy",
        vec![
            Column::new("id", ["1", "2", "3", "4", "5", "6"]),
            Column::new("name", ["Paris", "", "NULL", "Par1s", "Lyon", "Paris"]),
            Column::new("amount", ["10", "12", "$14", "11", "9000", ""]),
            Column::new(
                "when",
                ["2020-01-02", "2020-02-03", "03/04/2020", "2020-03-01", "", "2020-05-05"],
            ),
        ],
    )
}

#[test]
fn vectors_are_finite_bounded_and_fixed_dim() {
    let f = featurize_table(&messy_table(), &spell(), &FeatureConfig::default());
    assert_eq!(f.n_cells(), 24);
    assert_eq!(f.dim, FEATURE_DIM);
    for v in f.cells() {
        assert_eq!(v.len(), FEATURE_DIM);
        for (i, x) in v.iter().enumerate() {
            assert!(x.is_finite(), "dim {i} not finite: {x}");
            assert!((0.0..=1.0).contains(x), "dim {i} out of [0,1]: {x}");
        }
    }
}

#[test]
fn exactly_one_nv_bucket_set_per_side() {
    let f = featurize_table(&messy_table(), &spell(), &FeatureConfig::default());
    for v in f.cells() {
        let lhs: f32 = v[layout::NV_LHS..layout::NV_LHS + 5].iter().sum();
        let rhs: f32 = v[layout::NV_RHS..layout::NV_RHS + 5].iter().sum();
        assert_eq!(lhs, 1.0);
        assert_eq!(rhs, 1.0);
    }
}

#[test]
fn null_flag_set_exactly_on_null_cells() {
    let t = messy_table();
    let f = featurize_table(&t, &spell(), &FeatureConfig::default());
    for r in 0..t.n_rows() {
        for c in 0..t.n_cols() {
            let expected = matelda_table::value::is_null(t.cell(r, c));
            let got = f.get(r, c)[layout::NULL_FLAG] == 1.0;
            assert_eq!(got, expected, "cell ({r},{c}) = {:?}", t.cell(r, c));
        }
    }
}

#[test]
fn gaussian_block_abstains_outside_numeric_and_date_columns() {
    let t = messy_table();
    assert_eq!(t.columns[1].data_type(), DataType::Text);
    let f = featurize_table(&t, &spell(), &FeatureConfig::default());
    for r in 0..t.n_rows() {
        let v = f.get(r, 1);
        assert!(
            v[layout::GAUSSIAN..layout::GAUSSIAN + 9].iter().all(|x| *x == 0.0),
            "text column row {r} has gaussian flags"
        );
    }
}

#[test]
fn date_column_flags_format_breaks() {
    let t = messy_table();
    assert_eq!(t.columns[3].data_type(), DataType::Date);
    let f = featurize_table(&t, &spell(), &FeatureConfig::default());
    // Row 2 holds "03/04/2020" — a *valid* date shape, so not flagged;
    // row 4 holds "" — not a date, saturated.
    let ok_row = f.get(0, 3);
    let empty_row = f.get(4, 3);
    assert!(ok_row[layout::GAUSSIAN..layout::GAUSSIAN + 9].iter().all(|x| *x == 0.0));
    assert!(empty_row[layout::GAUSSIAN..layout::GAUSSIAN + 9].iter().all(|x| *x == 1.0));
}

#[test]
fn unparsable_cell_in_numeric_column_saturates() {
    let t = messy_table();
    let f = featurize_table(&t, &spell(), &FeatureConfig::default());
    // "$14" in the amount column.
    let v = f.get(2, 2);
    assert!(v[layout::GAUSSIAN..layout::GAUSSIAN + 9].iter().all(|x| *x == 1.0));
}

#[test]
fn ablated_configs_keep_dimensions_and_zero_their_blocks() {
    let t = messy_table();
    let sp = spell();
    for (cfg, lo, hi) in [
        (FeatureConfig::no_outliers(), layout::HISTOGRAM, layout::TYPO),
        (FeatureConfig::no_typos(), layout::TYPO, layout::TYPO + 1),
        (FeatureConfig::no_rules(), layout::STRUCTURAL_FD, layout::NULL_FLAG),
    ] {
        let f = featurize_table(&t, &sp, &cfg);
        for v in f.cells() {
            assert_eq!(v.len(), FEATURE_DIM);
            assert!(
                v[lo..hi].iter().all(|x| *x == 0.0),
                "block [{lo},{hi}) not zeroed under {cfg:?}"
            );
        }
    }
}

#[test]
fn empty_and_single_cell_tables() {
    let sp = spell();
    let cfg = FeatureConfig::default();
    let empty = Table::new("e", vec![]);
    assert!(featurize_table(&empty, &sp, &cfg).is_empty());
    let single = Table::new("s", vec![Column::new("a", ["x"])]);
    let f = featurize_table(&single, &sp, &cfg);
    assert_eq!(f.n_cells(), 1);
    assert_eq!(f.get(0, 0).len(), FEATURE_DIM);
}
