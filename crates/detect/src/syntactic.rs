//! Column-level syntactic profiles for the `+SF` (syntactic folding)
//! variant (§4.5.1): "features that capture data types, character
//! distributions, and cell value lengths" used to refine domain folds by
//! column similarity. The paper finds this refinement *hurts* on DGov-NTR
//! — the variant exists to reproduce that ablation.

use matelda_table::value::infer_type;
use matelda_table::{DataType, Table};

/// Dimensionality of the syntactic profile vector.
pub const SYNTACTIC_DIM: usize = 10;

/// Builds the 10-dim syntactic profile of one column:
/// `[frac_int, frac_float, frac_date, frac_text, frac_null,
///   frac_alpha_chars, frac_digit_chars, frac_punct_chars,
///   mean_len/32 (capped), std_len/32 (capped)]`.
pub fn column_syntactic_features(table: &Table, col: usize) -> Vec<f32> {
    let values = &table.columns[col].values;
    let n = values.len();
    let mut v = vec![0.0f32; SYNTACTIC_DIM];
    if n == 0 {
        return v;
    }

    let mut type_counts = [0usize; 5]; // int, float, date, text, null
    let (mut alpha, mut digit, mut punct, mut total_chars) = (0usize, 0usize, 0usize, 0usize);
    let mut lens = Vec::with_capacity(n);
    for val in values {
        match infer_type(val) {
            DataType::Integer => type_counts[0] += 1,
            DataType::Float => type_counts[1] += 1,
            DataType::Date => type_counts[2] += 1,
            DataType::Text => type_counts[3] += 1,
            DataType::Null => type_counts[4] += 1,
        }
        for c in val.chars() {
            total_chars += 1;
            if c.is_alphabetic() {
                alpha += 1;
            } else if c.is_ascii_digit() {
                digit += 1;
            } else if !c.is_whitespace() {
                punct += 1;
            }
        }
        lens.push(val.chars().count() as f32);
    }

    for (i, &c) in type_counts.iter().enumerate() {
        v[i] = c as f32 / n as f32;
    }
    if total_chars > 0 {
        v[5] = alpha as f32 / total_chars as f32;
        v[6] = digit as f32 / total_chars as f32;
        v[7] = punct as f32 / total_chars as f32;
    }
    let mean = lens.iter().sum::<f32>() / n as f32;
    let var = lens.iter().map(|l| (l - mean) * (l - mean)).sum::<f32>() / n as f32;
    v[8] = (mean / 32.0).min(1.0);
    v[9] = (var.sqrt() / 32.0).min(1.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    #[test]
    fn numeric_vs_text_columns_have_distant_profiles() {
        let t = Table::new(
            "t",
            vec![
                Column::new("age", ["24", "23", "30", "31"]),
                Column::new("name", ["Kylian", "Erling", "Harry", "Jack"]),
                Column::new("score", ["10", "20", "15", "12"]),
            ],
        );
        let age = column_syntactic_features(&t, 0);
        let name = column_syntactic_features(&t, 1);
        let score = column_syntactic_features(&t, 2);
        let d = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(d(&age, &score) < d(&age, &name));
        assert_eq!(age[0], 1.0, "all-integer column");
        assert_eq!(name[3], 1.0, "all-text column");
    }

    #[test]
    fn null_fraction_tracked() {
        let t = Table::new("t", vec![Column::new("x", ["", "NULL", "5", "6"])]);
        let v = column_syntactic_features(&t, 0);
        assert_eq!(v[4], 0.5);
        assert_eq!(v[0], 0.5);
    }

    #[test]
    fn empty_column_is_zero_vector() {
        let t = Table::new("t", vec![Column::new("x", Vec::<String>::new())]);
        assert_eq!(column_syntactic_features(&t, 0), vec![0.0; SYNTACTIC_DIM]);
    }

    #[test]
    fn length_features_capped() {
        let long = "x".repeat(1000);
        let t = Table::new("t", vec![Column::new("x", vec![long.clone(), long])]);
        let v = column_syntactic_features(&t, 0);
        assert_eq!(v[8], 1.0);
        assert_eq!(v[9], 0.0);
    }
}
