//! Assembly of the unified 32-dim cell feature vector (Alg. 1 line 10).

use crate::intern::InternedTable;
use crate::outlier::{
    gaussian_flags_distinct, histogram_flags_distinct, histogram_flags_eq2_literal_distinct,
};
use crate::rules::{rule_signals_with, RuleSignals};
use matelda_table::Table;
use matelda_text::SpellChecker;

/// Dimensionality of the unified cell feature space: 9 histogram + 9
/// Gaussian + 1 typo + 3 structural FD + 5 `nv_LHS` + 5 `nv_RHS` + 1
/// missing-value flag.
///
/// The missing-value dimension is a documented deviation from the paper's
/// Alg. 1 line 10 (see DESIGN.md): in the single-table setting Raha's
/// bag-of-characters features make empty cells maximally distinctive,
/// but the paper's Aspell substitution (which we follow) has no words to
/// check in an empty cell and the outlier detectors only see emptiness in
/// numeric columns. One explicit nullness bit restores that visibility in
/// the unified space.
pub const FEATURE_DIM: usize = 33;

/// Offsets of the feature blocks within the vector.
pub mod layout {
    /// TF-histogram flags (9).
    pub const HISTOGRAM: usize = 0;
    /// Gaussian flags (9).
    pub const GAUSSIAN: usize = 9;
    /// Typo flag (1).
    pub const TYPO: usize = 18;
    /// Structural FD flags (3).
    pub const STRUCTURAL_FD: usize = 19;
    /// `nv_LHS` one-hot buckets (5).
    pub const NV_LHS: usize = 22;
    /// `nv_RHS` one-hot buckets (5).
    pub const NV_RHS: usize = 27;
    /// Missing-value flag (1).
    pub const NULL_FLAG: usize = 32;
}

/// Human-readable name of one dimension of the unified feature space.
///
/// The failure-analysis report uses these to say *which detector fired*
/// on a misclassified cell, so the names carry the detector's threshold
/// where one exists (the outlier blocks) and the bucket index where the
/// dimension is a one-hot slot (the `nv` blocks).
///
/// # Panics
/// Panics if `dim >= FEATURE_DIM` — there is no such dimension.
pub fn feature_name(dim: usize) -> String {
    use crate::outlier::{DIST_THRESHOLDS, TF_THRESHOLDS};
    assert!(dim < FEATURE_DIM, "feature dimension {dim} out of range");
    match dim {
        d if d < layout::GAUSSIAN => format!("tf_hist(θ={})", TF_THRESHOLDS[d - layout::HISTOGRAM]),
        d if d < layout::TYPO => format!("gaussian(θ={})", DIST_THRESHOLDS[d - layout::GAUSSIAN]),
        d if d == layout::TYPO => "typo".to_string(),
        d if d < layout::NV_LHS => {
            // The three Eq. 5 structural-FD directions, in layout order.
            const FD: [&str; 3] = ["a0→aj", "aj-1→aj", "aj→aj+1"];
            format!("fd_structural[{}]", FD[d - layout::STRUCTURAL_FD])
        }
        d if d < layout::NV_RHS => format!("nv_lhs[bucket {}]", d - layout::NV_LHS),
        d if d < layout::NULL_FLAG => format!("nv_rhs[bucket {}]", d - layout::NV_RHS),
        _ => "null_flag".to_string(),
    }
}

/// The names of every dimension that fired (value > 0) in one cell's
/// feature vector — what the failure-analysis report prints per
/// misclassified cell. `nv` one-hot buckets appear with their bucket
/// index; bucket 0 (the least-suspicious quantile) is suppressed so the
/// list shows *signals*, not the vector's baseline encoding.
pub fn fired_features(v: &[f32]) -> Vec<String> {
    v.iter()
        .enumerate()
        .filter(|&(d, &x)| x > 0.0 && d != layout::NV_LHS && d != layout::NV_RHS && d < FEATURE_DIM)
        .map(|(d, _)| feature_name(d))
        .collect()
}

/// Which detector families contribute to the vector. Disabled families
/// are zeroed (not removed), so vector dimensionality — and therefore
/// cross-configuration comparability — is preserved. Implements the
/// paper's feature ablations (§4.5.3).
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Histogram + Gaussian outlier flags. Off = Matelda-NOD.
    pub outliers: bool,
    /// Dictionary typo flag. Off = Matelda-NTD.
    pub typos: bool,
    /// Structural FD flags and `nv` buckets. Off = Matelda-NRVD.
    pub rules: bool,
    /// g3 tolerance for the `nv` rule set (see `rules::rule_signals`).
    pub rule_g3_threshold: f64,
    /// Deviation ablation: use the literal Eq. 2 TF normalization instead
    /// of the max-count normalization this repo defaults to (DESIGN.md).
    pub tf_eq2_literal: bool,
    /// Deviation ablation: mark whole violating FD groups (Raha's
    /// convention) instead of only the minority rows.
    pub fd_whole_group: bool,
    /// Deviation ablation: drop the explicit missing-value dimension.
    pub no_null_flag: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            outliers: true,
            typos: true,
            rules: true,
            rule_g3_threshold: 0.3,
            tf_eq2_literal: false,
            fd_whole_group: false,
            no_null_flag: false,
        }
    }
}

impl FeatureConfig {
    /// Matelda-NOD: no outlier detectors.
    pub fn no_outliers() -> Self {
        Self { outliers: false, ..Self::default() }
    }

    /// Matelda-NTD: no typo detector.
    pub fn no_typos() -> Self {
        Self { typos: false, ..Self::default() }
    }

    /// Matelda-NRVD: no rule-violation detectors.
    pub fn no_rules() -> Self {
        Self { rules: false, ..Self::default() }
    }
}

/// Byte target of one [`CellFeatures`] backing block (4 MiB). The real
/// block length rounds down to a whole number of cells so a cell's `dim`
/// values never straddle blocks.
const FEATURE_BLOCK_BYTES: usize = 4 << 20;

/// The feature vectors of every cell of one table, stored row-major
/// (`n_rows * n_cols` cells of `dim` values each, cell index =
/// `row * n_cols + col`) in a **blocked** backing store: a run of
/// fixed-size blocks instead of one giant flat allocation, so a huge
/// table never demands one contiguous `cells × dim` slab and blocks can
/// spill to disk / stream back one at a time (DESIGN.md §14). Cell
/// vectors never straddle a block, so `get` still hands out plain
/// slices and the cluster/ML kernels are untouched.
#[derive(Debug, Clone)]
pub struct CellFeatures {
    /// Number of columns (for indexing).
    pub n_cols: usize,
    /// Number of rows.
    pub n_rows: usize,
    /// Values per cell ([`FEATURE_DIM`] for pipeline-produced features).
    pub dim: usize,
    /// Values per block — a multiple of `dim`, identical for every block
    /// but the last.
    block_len: usize,
    /// The backing blocks; concatenated they are the old flat matrix.
    blocks: Vec<Vec<f32>>,
}

impl CellFeatures {
    /// Values per block for a given `dim` (a whole number of cells).
    fn block_len_for(dim: usize) -> usize {
        let dim = dim.max(1);
        let cells_per_block = (FEATURE_BLOCK_BYTES / 4 / dim).max(1);
        cells_per_block * dim
    }

    /// An all-zero feature matrix of the given shape.
    pub fn zeros(n_cols: usize, n_rows: usize, dim: usize) -> Self {
        let total = n_rows * n_cols * dim;
        let block_len = Self::block_len_for(dim);
        let mut blocks = Vec::with_capacity(total.div_ceil(block_len.max(1)));
        let mut remaining = total;
        while remaining > 0 {
            let this = remaining.min(block_len);
            blocks.push(vec![0.0; this]);
            remaining -= this;
        }
        Self { n_cols, n_rows, dim, block_len, blocks }
    }

    /// Builds from the old flat row-major matrix (`n_rows * n_cols * dim`
    /// values). The snapshot decoder and spill reloads come through here.
    ///
    /// # Panics
    /// Panics if `data.len()` disagrees with the shape.
    pub fn from_flat(n_cols: usize, n_rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n_rows * n_cols * dim, "flat payload shape mismatch");
        let block_len = Self::block_len_for(dim);
        let blocks = if data.is_empty() {
            Vec::new()
        } else {
            data.chunks(block_len).map(<[f32]>::to_vec).collect()
        };
        Self { n_cols, n_rows, dim, block_len, blocks }
    }

    /// Reassembles from pre-split blocks (the spill reload path): every
    /// block but the last must hold exactly `block_len` values.
    pub(crate) fn from_blocks(
        n_cols: usize,
        n_rows: usize,
        dim: usize,
        block_len: usize,
        blocks: Vec<Vec<f32>>,
    ) -> Self {
        debug_assert_eq!(
            blocks.iter().map(Vec::len).sum::<usize>(),
            n_rows * n_cols * dim,
            "block payload shape mismatch"
        );
        Self { n_cols, n_rows, dim, block_len, blocks }
    }

    /// Values per block of the backing store (the last block may be
    /// shorter).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Like [`CellFeatures::from_flat`] with an explicit block length —
    /// exercises block boundaries at test-friendly sizes. `block_len`
    /// must be a positive multiple of `dim` (of 1 when `dim == 0`).
    #[doc(hidden)]
    pub fn from_flat_blocked(
        n_cols: usize,
        n_rows: usize,
        dim: usize,
        data: Vec<f32>,
        block_len: usize,
    ) -> Self {
        assert_eq!(data.len(), n_rows * n_cols * dim, "flat payload shape mismatch");
        assert!(
            block_len > 0 && block_len.is_multiple_of(dim.max(1)),
            "block_len must hold whole cells"
        );
        let blocks = if data.is_empty() {
            Vec::new()
        } else {
            data.chunks(block_len).map(<[f32]>::to_vec).collect()
        };
        Self { n_cols, n_rows, dim, block_len, blocks }
    }

    /// Builds from one vector per cell (row-major cells). Convenience for
    /// tests and fixtures; the pipeline writes into the blocked storage
    /// directly.
    ///
    /// # Panics
    /// Panics if the number of vectors is not `n_rows * n_cols` or their
    /// dimensions disagree.
    pub fn from_vectors(n_cols: usize, n_rows: usize, vectors: &[Vec<f32>]) -> Self {
        assert_eq!(vectors.len(), n_rows * n_cols, "cell count mismatch");
        let dim = vectors.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for v in vectors {
            assert_eq!(v.len(), dim, "cell vector dimension mismatch");
            data.extend_from_slice(v);
        }
        Self::from_flat(n_cols, n_rows, dim, data)
    }

    /// The vector of cell `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &[f32] {
        let at = (row * self.n_cols + col) * self.dim;
        let block = &self.blocks[at / self.block_len];
        let off = at % self.block_len;
        &block[off..off + self.dim]
    }

    /// Mutable view of cell `(row, col)`.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut [f32] {
        let at = (row * self.n_cols + col) * self.dim;
        let block = &mut self.blocks[at / self.block_len];
        let off = at % self.block_len;
        &mut block[off..off + self.dim]
    }

    /// Number of cells (`n_rows * n_cols`).
    pub fn n_cells(&self) -> usize {
        self.n_rows * self.n_cols
    }

    /// Whether the table holds no cells.
    pub fn is_empty(&self) -> bool {
        self.n_cells() == 0
    }

    /// Total number of stored values (`n_cells() * dim`).
    pub fn n_values(&self) -> usize {
        self.n_cells() * self.dim
    }

    /// Iterates the cells row-major as `dim`-length slices.
    pub fn cells(&self) -> impl Iterator<Item = &[f32]> {
        // `max(1)` keeps `chunks_exact` legal for dim == 0 (no cells can
        // exist then, so the iterator is empty either way).
        let dim = self.dim.max(1);
        self.blocks.iter().flat_map(move |b| b.chunks_exact(dim))
    }

    /// The backing blocks in order — concatenated they reproduce the old
    /// flat matrix exactly (snapshot encoding depends on that).
    pub fn blocks(&self) -> impl Iterator<Item = &[f32]> {
        self.blocks.iter().map(Vec::as_slice)
    }

    /// Materializes the flat row-major matrix (one contiguous copy) —
    /// for codecs that need a single run, not for hot paths.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.n_values());
        for b in &self.blocks {
            out.extend_from_slice(b);
        }
        out
    }
}

/// Featurizes every cell of `table` into the unified space.
///
/// Zero-copy path: the table's columns are interned once (distinct
/// values plus per-row codes, borrowing the table's own strings), the
/// per-value detectors — TF-histogram ratios, numeric parsing and
/// z-tests, the spellchecker, the nullness test — run once per
/// *distinct* value, and
/// the flags are scattered through the codes straight into the flat
/// [`CellFeatures`] matrix. Bit-identical to featurizing each cell
/// independently (pinned by the equivalence proptest below): interning
/// preserves the value multiset, per-value counts, and row order, and the
/// only order-sensitive accumulations (the Gaussian detector's f64
/// moments) still run in row order through the codes.
pub fn featurize_table(
    table: &Table,
    spell: &SpellChecker,
    config: &FeatureConfig,
) -> CellFeatures {
    let (n, m) = (table.n_rows(), table.n_cols());
    let mut out = CellFeatures::zeros(m, n, FEATURE_DIM);
    let interned = InternedTable::build(table);

    if config.outliers {
        for (j, (col, icol)) in table.columns.iter().zip(&interned.columns).enumerate() {
            let hist = if config.tf_eq2_literal {
                histogram_flags_eq2_literal_distinct(&icol.counts)
            } else {
                histogram_flags_distinct(&icol.counts)
            };
            let gauss = gaussian_flags_distinct(&icol.distinct, &icol.codes, col.data_type());
            for (r, &code) in icol.codes.iter().enumerate() {
                let v = out.get_mut(r, j);
                let (h, g) = (&hist[code as usize], &gauss[code as usize]);
                for k in 0..9 {
                    v[layout::HISTOGRAM + k] = f32::from(u8::from(h[k]));
                    v[layout::GAUSSIAN + k] = f32::from(u8::from(g[k]));
                }
            }
        }
    }

    if config.typos {
        for (j, icol) in interned.columns.iter().enumerate() {
            let flags: Vec<bool> = icol.distinct.iter().map(|v| spell.flags_cell(v)).collect();
            for (r, &code) in icol.codes.iter().enumerate() {
                out.get_mut(r, j)[layout::TYPO] = f32::from(u8::from(flags[code as usize]));
            }
        }
    }

    // The nullness bit belongs to no ablatable detector family (the
    // paper's NOD/NTD/NRVD variants each keep it); only the deviation
    // ablation drops it.
    if !config.no_null_flag {
        for (j, icol) in interned.columns.iter().enumerate() {
            let nulls: Vec<bool> =
                icol.distinct.iter().map(|v| matelda_table::value::is_null(v)).collect();
            for (r, &code) in icol.codes.iter().enumerate() {
                if nulls[code as usize] {
                    out.get_mut(r, j)[layout::NULL_FLAG] = 1.0;
                }
            }
        }
    }

    if config.rules && m > 0 {
        let RuleSignals { structural, nv_lhs_bucket, nv_rhs_bucket } =
            rule_signals_with(table, config.rule_g3_threshold, config.fd_whole_group);
        for j in 0..m {
            for r in 0..n {
                let v = out.get_mut(r, j);
                for k in 0..3 {
                    v[layout::STRUCTURAL_FD + k] = f32::from(u8::from(structural[j][r][k]));
                }
                v[layout::NV_LHS + nv_lhs_bucket[j][r]] = 1.0;
                v[layout::NV_RHS + nv_rhs_bucket[j][r]] = 1.0;
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    fn spell() -> SpellChecker {
        SpellChecker::english()
    }

    fn demo_table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("club", ["Real", "Real", "City", "City"]),
                Column::new("country", ["Spain", "France", "England", "England"]),
                Column::new("score", ["10", "12", "11", "900"]),
            ],
        )
    }

    #[test]
    fn vector_shape_and_layout() {
        let f = featurize_table(&demo_table(), &spell(), &FeatureConfig::default());
        assert_eq!(f.n_rows, 4);
        assert_eq!(f.n_cols, 3);
        assert_eq!(f.n_cells(), 12);
        assert_eq!(f.dim, FEATURE_DIM);
        assert_eq!(f.n_values(), 12 * FEATURE_DIM);
        // Every cell has exactly one nv bucket per side set.
        for v in f.cells() {
            let lhs: f32 = v[layout::NV_LHS..layout::NV_LHS + 5].iter().sum();
            let rhs: f32 = v[layout::NV_RHS..layout::NV_RHS + 5].iter().sum();
            assert_eq!(lhs, 1.0);
            assert_eq!(rhs, 1.0);
        }
    }

    #[test]
    fn numeric_outlier_shows_in_gaussian_block() {
        let f = featurize_table(&demo_table(), &spell(), &FeatureConfig::default());
        let outlier = f.get(3, 2);
        let inlier = f.get(0, 2);
        let sum = |v: &[f32]| v[layout::GAUSSIAN..layout::GAUSSIAN + 9].iter().sum::<f32>();
        assert!(sum(outlier) > sum(inlier));
    }

    #[test]
    fn fd_violation_shows_in_structural_block() {
        let f = featurize_table(&demo_table(), &spell(), &FeatureConfig::default());
        // The Real group disagrees on country (Spain vs France); the
        // 1-vs-1 tie breaks to "France", so row 0 (Spain) is the minority
        // cell that gets flagged. Row 2's City group is consistent.
        let dirty = f.get(0, 1);
        let clean = f.get(2, 1);
        assert_eq!(dirty[layout::STRUCTURAL_FD + 1], 1.0);
        assert_eq!(clean[layout::STRUCTURAL_FD + 1], 0.0);
    }

    #[test]
    fn ablations_zero_their_blocks() {
        let t = demo_table();
        let sp = spell();
        let nod = featurize_table(&t, &sp, &FeatureConfig::no_outliers());
        for v in nod.cells() {
            assert!(v[layout::HISTOGRAM..layout::TYPO].iter().all(|x| *x == 0.0));
        }
        let ntd = featurize_table(&t, &sp, &FeatureConfig::no_typos());
        for v in ntd.cells() {
            assert_eq!(v[layout::TYPO], 0.0);
        }
        let nrvd = featurize_table(&t, &sp, &FeatureConfig::no_rules());
        for v in nrvd.cells() {
            assert!(v[layout::STRUCTURAL_FD..layout::NULL_FLAG].iter().all(|x| *x == 0.0));
        }
    }

    #[test]
    fn feature_names_cover_every_dimension() {
        let names: Vec<String> = (0..FEATURE_DIM).map(feature_name).collect();
        // Unique, and the block boundaries carry the right labels.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), FEATURE_DIM, "duplicate feature names: {names:?}");
        assert_eq!(names[layout::HISTOGRAM], "tf_hist(θ=0.1)");
        assert_eq!(names[layout::GAUSSIAN], "gaussian(θ=1)");
        assert_eq!(names[layout::TYPO], "typo");
        assert_eq!(names[layout::STRUCTURAL_FD], "fd_structural[a0→aj]");
        assert_eq!(names[layout::NV_LHS + 2], "nv_lhs[bucket 2]");
        assert_eq!(names[layout::NULL_FLAG], "null_flag");
    }

    #[test]
    fn fired_features_names_the_active_detectors() {
        let t = Table::new("t", vec![Column::new("genre", ["drama", "derama", "crime"])]);
        let f = featurize_table(&t, &spell(), &FeatureConfig::default());
        let fired = fired_features(f.get(1, 0));
        assert!(fired.iter().any(|n| n == "typo"), "{fired:?}");
        // Baseline nv bucket 0 is suppressed — signals only.
        assert!(!fired.iter().any(|n| n.ends_with("[bucket 0]")), "{fired:?}");
    }

    #[test]
    fn typo_block_fires_on_unknown_words() {
        let t = Table::new("t", vec![Column::new("genre", ["drama", "derama", "crime"])]);
        let f = featurize_table(&t, &spell(), &FeatureConfig::default());
        assert_eq!(f.get(0, 0)[layout::TYPO], 0.0);
        assert_eq!(f.get(1, 0)[layout::TYPO], 1.0);
    }

    #[test]
    fn blocked_store_is_equivalent_to_flat_at_every_block_length() {
        // 5 cells of dim 3 across block lengths that split the matrix at
        // every cell boundary, including mid-row and one-cell blocks.
        let dim = 3;
        let flat: Vec<f32> = (0..5 * dim).map(|i| i as f32).collect();
        let reference = CellFeatures::from_flat(5, 1, dim, flat.clone());
        for cells_per_block in 1..=6 {
            let f = CellFeatures::from_flat_blocked(5, 1, dim, flat.clone(), cells_per_block * dim);
            for col in 0..5 {
                assert_eq!(f.get(0, col), reference.get(0, col), "block {cells_per_block}");
            }
            assert_eq!(
                f.cells().collect::<Vec<_>>(),
                reference.cells().collect::<Vec<_>>(),
                "block {cells_per_block}"
            );
            assert_eq!(f.to_flat(), flat, "block {cells_per_block}");
            assert_eq!(
                f.blocks().flatten().copied().collect::<Vec<f32>>(),
                flat,
                "block {cells_per_block}"
            );
        }
    }

    #[test]
    fn empty_table_yields_no_vectors() {
        let t = Table::new("t", vec![]);
        let f = featurize_table(&t, &spell(), &FeatureConfig::default());
        assert!(f.is_empty());
        assert_eq!(f.n_values(), 0);
    }

    #[test]
    fn cells_comparable_across_tables() {
        // The whole point of the unified space: equivalent dirtiness in
        // different tables should produce nearby vectors. Two tables with
        // disjoint schemata, each containing one numeric outlier.
        let t1 =
            Table::new("players", vec![Column::new("age", ["24", "23", "30", "1995", "31", "26"])]);
        let t2 = Table::new(
            "cities",
            vec![Column::new(
                "population",
                ["10000000", "10100000", "10200000", "10300000", "10400000", "99"],
            )],
        );
        let sp = spell();
        let cfg = FeatureConfig::default();
        let f1 = featurize_table(&t1, &sp, &cfg);
        let f2 = featurize_table(&t2, &sp, &cfg);
        let d = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        // outlier in t1 vs outlier in t2 closer than outlier vs inlier.
        let cross_outlier = d(f1.get(3, 0), f2.get(5, 0));
        let outlier_vs_inlier = d(f1.get(3, 0), f1.get(0, 0));
        assert!(
            cross_outlier < outlier_vs_inlier,
            "cross-table outliers {cross_outlier} vs within-table contrast {outlier_vs_inlier}"
        );
    }

    /// The pre-interning featurizer, kept verbatim as the equivalence
    /// reference: every detector runs per cell over the raw column
    /// values. The arena path must reproduce it bit for bit.
    fn reference_featurize(
        table: &Table,
        spell: &SpellChecker,
        config: &FeatureConfig,
    ) -> Vec<Vec<f32>> {
        use crate::outlier::{gaussian_flags, histogram_flags, histogram_flags_eq2_literal};
        use crate::typo::typo_flags;
        let (n, m) = (table.n_rows(), table.n_cols());
        let mut vectors = vec![vec![0.0f32; FEATURE_DIM]; n * m];
        if config.outliers {
            for (j, col) in table.columns.iter().enumerate() {
                let hist = if config.tf_eq2_literal {
                    histogram_flags_eq2_literal(&col.values)
                } else {
                    histogram_flags(&col.values)
                };
                let gauss = gaussian_flags(&col.values, col.data_type());
                for r in 0..n {
                    let v = &mut vectors[r * m + j];
                    for k in 0..9 {
                        v[layout::HISTOGRAM + k] = f32::from(u8::from(hist[r][k]));
                        v[layout::GAUSSIAN + k] = f32::from(u8::from(gauss[r][k]));
                    }
                }
            }
        }
        if config.typos {
            for (j, col) in table.columns.iter().enumerate() {
                let flags = typo_flags(&col.values, spell);
                for (r, &flag) in flags.iter().enumerate() {
                    vectors[r * m + j][layout::TYPO] = f32::from(u8::from(flag));
                }
            }
        }
        if !config.no_null_flag {
            for (j, col) in table.columns.iter().enumerate() {
                for (r, v) in col.values.iter().enumerate() {
                    if matelda_table::value::is_null(v) {
                        vectors[r * m + j][layout::NULL_FLAG] = 1.0;
                    }
                }
            }
        }
        if config.rules && m > 0 {
            let RuleSignals { structural, nv_lhs_bucket, nv_rhs_bucket } =
                rule_signals_with(table, config.rule_g3_threshold, config.fd_whole_group);
            for j in 0..m {
                for r in 0..n {
                    let v = &mut vectors[r * m + j];
                    for k in 0..3 {
                        v[layout::STRUCTURAL_FD + k] = f32::from(u8::from(structural[j][r][k]));
                    }
                    v[layout::NV_LHS + nv_lhs_bucket[j][r]] = 1.0;
                    v[layout::NV_RHS + nv_rhs_bucket[j][r]] = 1.0;
                }
            }
        }
        vectors
    }

    fn assert_matches_reference(table: &Table, config: &FeatureConfig) {
        let sp = spell();
        let fast = featurize_table(table, &sp, config);
        let slow = reference_featurize(table, &sp, config);
        assert_eq!(fast.n_cells(), slow.len());
        for (got, want) in fast.cells().zip(&slow) {
            assert_eq!(got, want.as_slice());
        }
    }

    #[test]
    fn arena_featurize_matches_per_cell_reference_on_demo() {
        for config in [
            FeatureConfig::default(),
            FeatureConfig::no_outliers(),
            FeatureConfig::no_typos(),
            FeatureConfig::no_rules(),
            FeatureConfig { tf_eq2_literal: true, ..FeatureConfig::default() },
            FeatureConfig { fd_whole_group: true, ..FeatureConfig::default() },
            FeatureConfig { no_null_flag: true, ..FeatureConfig::default() },
        ] {
            assert_matches_reference(&demo_table(), &config);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        // The interned/arena featurizer is pinned to the per-cell
        // reference: identical flat output for arbitrary small tables
        // mixing repeated strings, numerics, nulls, and typos.
        #[test]
        fn arena_featurize_matches_per_cell_reference(
            cols in proptest::collection::vec(
                proptest::collection::vec(0usize..10, 2..12),
                1..4,
            ),
            tf_eq2_raw in 0u8..2,
        ) {
            // A palette exercising every detector family: repeats, a
            // numeric run, an unparsable money string, nulls, typos.
            const PALETTE: [&str; 10] = [
                "drama", "derama", "10", "12", "900", "$13", "", "NULL", "crime", "10",
            ];
            let n_rows = cols.iter().map(Vec::len).min().unwrap_or(0);
            let table = Table::new(
                "p",
                cols.iter()
                    .enumerate()
                    .map(|(j, rows)| {
                        Column::new(
                            format!("c{j}"),
                            rows[..n_rows].iter().map(|&v| PALETTE[v].to_string()),
                        )
                    })
                    .collect(),
            );
            // Small dictionary: equivalence does not depend on dictionary
            // contents, and skipping the full English load keeps the 48
            // proptest cases fast.
            let sp = SpellChecker::from_words(["drama", "crime"]);
            let config =
                FeatureConfig { tf_eq2_literal: tf_eq2_raw == 1, ..FeatureConfig::default() };
            let fast = featurize_table(&table, &sp, &config);
            let slow = reference_featurize(&table, &sp, &config);
            proptest::prop_assert_eq!(fast.n_cells(), slow.len());
            for (got, want) in fast.cells().zip(&slow) {
                proptest::prop_assert_eq!(got, want.as_slice());
            }
        }
    }
}
