//! # matelda-detect
//!
//! The base error detectors and the **unified cell feature space** — the
//! paper's central technical contribution (§3.3.1): a fixed-length,
//! table- and column-agnostic embedding of every cell, so that a single
//! clustering and a single classifier can treat cells from tables with
//! disjoint schemata identically.
//!
//! The feature vector of a cell `c` is (Alg. 1 line 10):
//!
//! ```text
//! v_c = [ d_θ(c), d_TD(c), d_FD(c), nv_LHS(c), nv_RHS(c) ]
//! ```
//!
//! laid out as 32 dimensions:
//!
//! | dims   | content |
//! |--------|---------|
//! | 0..9   | TF-histogram outlier flags, θ_tf ∈ {0.1, …, 0.9} (Eq. 2) |
//! | 9..18  | Gaussian outlier flags, θ_dist ∈ {1, 1.3, 1.5, 1.7, 2, 2.3, 2.5, 2.7, 3} (Eq. 3) |
//! | 18     | dictionary typo flag `d_TD` (Eq. 4) |
//! | 19..22 | structural FD flags `d_{a₀→aⱼ}`, `d_{aⱼ₋₁→aⱼ}`, `d_{aⱼ→aⱼ₊₁}` (Eq. 5) |
//! | 22..27 | one-hot 20%-quantile bucket of `nv_LHS` (Eq. 6) |
//! | 27..32 | one-hot 20%-quantile bucket of `nv_RHS` (Eq. 6) |
//!
//! [`FeatureConfig`] can disable each detector family, implementing the
//! paper's Matelda-NOD / -NTD / -NRVD ablations (§4.5.3); disabled blocks
//! are zeroed so vectors remain comparable across configurations.
//!
//! [`syntactic`] provides the *column-level* syntactic profile (data
//! types, character distributions, value lengths) used by the `+SF`
//! syntactic-folding variant (§4.5.1).

pub mod featurize;
pub mod intern;
pub mod outlier;
pub mod rules;
pub mod spill;
pub mod syntactic;
pub mod typo;

pub use featurize::{
    feature_name, featurize_table, fired_features, CellFeatures, FeatureConfig, FEATURE_DIM,
};
pub use intern::{InternedColumn, InternedTable};
pub use spill::{load_features, spill_features, spill_path};
pub use syntactic::column_syntactic_features;
