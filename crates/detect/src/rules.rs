//! Rule-violation detectors (§3.3.1, Eqs. 5–6).
//!
//! Cross-table comparability of FD features is the paper's trickiest
//! design point: different tables have different FD sets, so per-FD
//! features cannot line up. The paper's answer (inspired by similarity
//! flooding) is *structural*: every column gets exactly three candidate
//! FDs anchored on its position —
//!
//! * `a₀ → aⱼ` — the first column is "typically the key of the table",
//! * `aⱼ₋₁ → aⱼ` and `aⱼ → aⱼ₊₁` — "relevant columns are positioned
//!   together in the table".
//!
//! plus ten aggregate features: the relative frequency of the cell's
//! participation in *any* rule violation, one-hot encoded into five 20%
//! quantile buckets per FD side (Eq. 6).

use matelda_fd::{mine_approximate, violation_stats};
use matelda_table::Table;
use std::collections::HashSet;

/// Rule-derived signals for every cell of one table.
#[derive(Debug, Clone)]
pub struct RuleSignals {
    /// `[col][row]` → the three structural FD flags of Eq. 5.
    pub structural: Vec<Vec<[bool; 3]>>,
    /// `[col][row]` → `nv_LHS` quantile bucket in `0..5`.
    pub nv_lhs_bucket: Vec<Vec<usize>>,
    /// `[col][row]` → `nv_RHS` quantile bucket in `0..5`.
    pub nv_rhs_bucket: Vec<Vec<usize>>,
}

/// Maps a relative frequency in `[0, 1]` to one of five 20%-wide buckets.
pub fn quantile_bucket(nv: f64) -> usize {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&nv), "nv out of range: {nv}");
    ((nv * 5.0).floor() as usize).min(4)
}

/// Computes all rule signals of a table.
///
/// `g3_threshold` controls which unary FDs count as "rules" for the
/// aggregate `nv` statistics: a dependency is a rule if it holds on all
/// but at most that fraction of rows. The threshold must sit above the
/// expected error rate, otherwise genuinely-dirty FDs drop out of the
/// rule set and their violations become invisible.
pub fn rule_signals(table: &Table, g3_threshold: f64) -> RuleSignals {
    rule_signals_with(table, g3_threshold, false)
}

/// [`rule_signals`] with a switch between minority-row marking (the
/// default) and whole-group marking (Raha's column-local convention,
/// kept for the deviation ablation).
pub fn rule_signals_with(table: &Table, g3_threshold: f64, whole_group: bool) -> RuleSignals {
    let m = table.n_cols();
    let n = table.n_rows();

    // --- Eq. 5: three structural candidate FDs per column. ---
    // Violation marking uses the *minority* rows of each inconsistent
    // group: the tuples whose RHS disagrees with the group's majority are
    // the ones a repair would change. Marking whole groups (Raha's
    // column-local convention) would give clean majority cells the same
    // signature as the dirty minority and blur the quality folds the
    // labels propagate through.
    let marked = |lhs: usize, rhs: usize| -> Vec<usize> {
        let stats = violation_stats(table, lhs, rhs);
        if whole_group {
            stats.violating_rows
        } else {
            stats.minority_rows
        }
    };
    let mut structural = vec![vec![[false; 3]; n]; m];
    for j in 0..m {
        // d_{a0 -> aj}
        if j > 0 {
            for r in marked(0, j) {
                structural[j][r][0] = true;
            }
        }
        // d_{a(j-1) -> aj}; for j == 1 this duplicates the first detector,
        // exactly as Eq. 5 prescribes.
        if j > 0 {
            for r in marked(j - 1, j) {
                structural[j][r][1] = true;
            }
        }
        // d_{aj -> a(j+1)}: the current column sits on the LHS.
        if j + 1 < m {
            for r in marked(j, j + 1) {
                structural[j][r][2] = true;
            }
        }
    }

    // --- Eq. 6: aggregate violation frequencies over the mined rule set. ---
    let rules = mine_approximate(table, g3_threshold);
    let mut lhs_counts = vec![vec![0usize; n]; m];
    let mut rhs_counts = vec![vec![0usize; n]; m];
    let mut lhs_rules = vec![0usize; m];
    let mut rhs_rules = vec![0usize; m];
    for fd in &rules {
        lhs_rules[fd.lhs] += 1;
        rhs_rules[fd.rhs] += 1;
        let stats = violation_stats(table, fd.lhs, fd.rhs);
        let viol: HashSet<usize> =
            if whole_group { stats.violating_rows } else { stats.minority_rows }
                .into_iter()
                .collect();
        for &r in &viol {
            lhs_counts[fd.lhs][r] += 1;
            rhs_counts[fd.rhs][r] += 1;
        }
    }

    let bucketize = |counts: &[Vec<usize>], totals: &[usize]| -> Vec<Vec<usize>> {
        (0..m)
            .map(|j| {
                (0..n)
                    .map(|r| {
                        if totals[j] == 0 {
                            0
                        } else {
                            quantile_bucket(counts[j][r] as f64 / totals[j] as f64)
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let nv_lhs_bucket = bucketize(&lhs_counts, &lhs_rules);
    let nv_rhs_bucket = bucketize(&rhs_counts, &rhs_rules);

    RuleSignals { structural, nv_lhs_bucket, nv_rhs_bucket }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::Column;

    /// Clubs table shaped like the running example: the FD
    /// club -> country is violated by one Real Madrid row.
    fn clubs() -> Table {
        Table::new(
            "clubs",
            vec![
                Column::new("id", ["1", "2", "3", "4", "5", "6"]),
                Column::new("club", ["Real", "Real", "Real", "City", "City", "Ajax"]),
                Column::new("country", ["Spain", "Spain", "France", "England", "England", "NL"]),
            ],
        )
    }

    #[test]
    fn quantile_buckets_cover_unit_interval() {
        assert_eq!(quantile_bucket(0.0), 0);
        assert_eq!(quantile_bucket(0.19), 0);
        assert_eq!(quantile_bucket(0.2), 1);
        assert_eq!(quantile_bucket(0.5), 2);
        assert_eq!(quantile_bucket(0.99), 4);
        assert_eq!(quantile_bucket(1.0), 4);
    }

    #[test]
    fn structural_flags_catch_neighbor_fd_violation() {
        let s = rule_signals(&clubs(), 0.3);
        // Column 2 (country): d_{a1->a2} fires for the *minority* row of
        // the Real group (France, row 2) — not for the consistent
        // majority (Spain, rows 0-1).
        assert!(!s.structural[2][0][1]);
        assert!(!s.structural[2][1][1]);
        assert!(s.structural[2][2][1]);
        assert!(!s.structural[2][3][1], "City group is consistent");
        // Column 1 (club): detector d_{a1->a2} (its own LHS role, slot 2)
        // fires for the LHS cell of the minority row.
        assert!(s.structural[1][2][2]);
        assert!(!s.structural[1][5][2], "Ajax is a singleton group");
        // Column 0 is a key: nothing fires in its LHS-role slot.
        assert!(!s.structural[0].iter().any(|f| f[2]));
    }

    #[test]
    fn first_column_detector_is_separate_from_neighbor() {
        // Table where a0->a2 is violated but a1->a2 is not. The 1-vs-1
        // tie breaks to the lexicographically smaller RHS ("1"), so row 1
        // is the minority.
        let t = Table::new(
            "t",
            vec![
                Column::new("k", ["a", "a"]),
                Column::new("x", ["p", "q"]),
                Column::new("v", ["1", "2"]),
            ],
        );
        let s = rule_signals(&t, 1.0);
        assert!(s.structural[2][1][0], "a0->a2 violated (minority row)");
        assert!(!s.structural[2][1][1], "a1->a2 holds (x is key)");
    }

    #[test]
    fn nv_buckets_rise_with_violation_participation() {
        let s = rule_signals(&clubs(), 0.3);
        // Row 2's country cell is RHS of the violated club->country rule.
        let dirty_bucket = s.nv_rhs_bucket[2][2];
        let clean_bucket = s.nv_rhs_bucket[2][5];
        assert!(dirty_bucket > clean_bucket, "dirty {dirty_bucket} vs clean {clean_bucket}");
    }

    #[test]
    fn single_column_table_has_all_zero_signals() {
        let t = Table::new("t", vec![Column::new("a", ["1", "1", "2"])]);
        let s = rule_signals(&t, 0.5);
        assert!(s.structural[0].iter().all(|f| *f == [false; 3]));
        assert!(s.nv_lhs_bucket[0].iter().all(|&b| b == 0));
        assert!(s.nv_rhs_bucket[0].iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_table_is_fine() {
        let t = Table::new("t", vec![]);
        let s = rule_signals(&t, 0.5);
        assert!(s.structural.is_empty());
    }
}
