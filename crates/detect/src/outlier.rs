//! Outlier detectors: TF-histogram (Eq. 2) and Gaussian (Eq. 3) sweeps.
//!
//! Both are evaluated strictly within a cell's own column ("we evaluate
//! the outlier/inlier property of a cell only with regard to the cell
//! values that occur in the same column", §3.3.1), but emit flags at fixed
//! threshold grids so the resulting bits mean the same thing in every
//! table.

use matelda_table::value::as_f64;
use matelda_table::{DataType, Table};
use std::collections::HashMap;

/// The paper's TF-histogram threshold grid Θ_tf.
pub const TF_THRESHOLDS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// The paper's Gaussian threshold grid Θ_dist.
pub const DIST_THRESHOLDS: [f64; 9] = [1.0, 1.3, 1.5, 1.7, 2.0, 2.3, 2.5, 2.7, 3.0];

/// TF-histogram flags for every cell of a column: flag at threshold `θ` if
/// the cell's *relative term frequency* is below `θ` (Eq. 2).
///
/// Normalization deviation (documented in DESIGN.md): Eq. 2 normalizes a
/// value's count by `Σ_i' TF(t[i',j])`, which for realistic row counts
/// pushes every ratio far below the smallest threshold (0.1) — the flags
/// degenerate to all-ones and carry no signal. We normalize by the
/// column's *maximum* term count instead: the most frequent value scores
/// 1.0, a singleton in a repetitive column scores near 0, and the score
/// is scale-invariant across columns of different lengths — exactly what
/// the unified multi-table feature space needs. Columns where every value
/// is unique score 1.0 everywhere and the detector abstains (instead of
/// flagging everything).
///
/// Returns, row-major, one `[bool; 9]` per row.
pub fn histogram_flags(values: &[String]) -> Vec<[bool; 9]> {
    let n = values.len();
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.as_str()).or_insert(0) += 1;
    }
    let max_count = counts.values().copied().max().unwrap_or(0);
    let mut out = Vec::with_capacity(n);
    for v in values {
        let ratio = if max_count == 0 { 1.0 } else { counts[v.as_str()] as f64 / max_count as f64 };
        let mut flags = [false; 9];
        for (k, &theta) in TF_THRESHOLDS.iter().enumerate() {
            flags[k] = ratio < theta;
        }
        out.push(flags);
    }
    out
}

/// Gaussian flags for every cell of a column: for a majority-numeric
/// column, flag at threshold `θ` if `|x - μ| / σ > θ` (Eq. 3).
///
/// Two deliberate extensions for the multi-table feature space:
/// * cells of a numeric column that do **not** parse as numbers (the
///   `$83,320,000` formatting errors of the running example) saturate all
///   nine flags — they are "infinitely far" from the distribution;
/// * non-numeric columns emit all-zero flags (the detector abstains).
pub fn gaussian_flags(values: &[String], column_type: DataType) -> Vec<[bool; 9]> {
    let n = values.len();
    // Date columns get the same "does not fit the column's shape"
    // saturation treatment: a date column's distribution is its format,
    // and a cell that no longer parses as a date is maximally outlying.
    if column_type == DataType::Date {
        return values
            .iter()
            .map(|v| if matelda_table::value::looks_like_date(v) { [false; 9] } else { [true; 9] })
            .collect();
    }
    let numeric_column = matches!(column_type, DataType::Integer | DataType::Float);
    if !numeric_column {
        return vec![[false; 9]; n];
    }
    let nums: Vec<Option<f64>> = values.iter().map(|v| as_f64(v)).collect();
    let parsed: Vec<f64> = nums.iter().flatten().copied().collect();
    if parsed.is_empty() {
        return vec![[true; 9]; n];
    }
    let mean = parsed.iter().sum::<f64>() / parsed.len() as f64;
    let var = parsed.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / parsed.len() as f64;
    let std = var.sqrt();
    let mut out = Vec::with_capacity(n);
    for num in &nums {
        let mut flags = [false; 9];
        match num {
            None => flags = [true; 9],
            Some(x) => {
                // σ = 0 means a constant column: everything is an inlier.
                if std > 0.0 {
                    let z = (x - mean).abs() / std;
                    for (k, &theta) in DIST_THRESHOLDS.iter().enumerate() {
                        flags[k] = z > theta;
                    }
                }
            }
        }
        out.push(flags);
    }
    out
}

/// [`histogram_flags`] evaluated once per *distinct* value: entry `d` is
/// the flag row every cell holding distinct value `d` receives. `counts`
/// come from an [`crate::intern::InternedColumn`]; the ratio arithmetic
/// is identical to the per-cell version (same counts, same `max_count`),
/// so scattering through the codes is bit-exact.
pub fn histogram_flags_distinct(counts: &[usize]) -> Vec<[bool; 9]> {
    let max_count = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&c| {
            let ratio = if max_count == 0 { 1.0 } else { c as f64 / max_count as f64 };
            let mut flags = [false; 9];
            for (k, &theta) in TF_THRESHOLDS.iter().enumerate() {
                flags[k] = ratio < theta;
            }
            flags
        })
        .collect()
}

/// [`histogram_flags_eq2_literal`] per distinct value. The reference's
/// denominator `Σ_rows counts[value(row)]` equals `Σ_distinct counts²`
/// exactly (integer arithmetic, order-free).
pub fn histogram_flags_eq2_literal_distinct(counts: &[usize]) -> Vec<[bool; 9]> {
    let denom: usize = counts.iter().map(|&c| c * c).sum();
    counts
        .iter()
        .map(|&c| {
            let ratio = if denom == 0 { 0.0 } else { c as f64 / denom as f64 };
            let mut flags = [false; 9];
            for (k, &theta) in TF_THRESHOLDS.iter().enumerate() {
                flags[k] = ratio < theta;
            }
            flags
        })
        .collect()
}

/// [`gaussian_flags`] evaluated once per distinct value.
///
/// The distribution moments still accumulate in *row order* over the
/// parsed values (`codes` reconstructs the exact f64 addition sequence of
/// the per-cell reference — f64 addition is not associative, so summing
/// per-distinct would change bits). Only the per-value work — numeric
/// parsing, date detection, the z-test per threshold — collapses to once
/// per distinct value.
pub fn gaussian_flags_distinct(
    distinct: &[&str],
    codes: &[u32],
    column_type: DataType,
) -> Vec<[bool; 9]> {
    if column_type == DataType::Date {
        return distinct
            .iter()
            .map(|v| if matelda_table::value::looks_like_date(v) { [false; 9] } else { [true; 9] })
            .collect();
    }
    let numeric_column = matches!(column_type, DataType::Integer | DataType::Float);
    if !numeric_column {
        return vec![[false; 9]; distinct.len()];
    }
    let nums: Vec<Option<f64>> = distinct.iter().map(|v| as_f64(v)).collect();
    let any_parsed = codes.iter().any(|&c| nums[c as usize].is_some());
    if !any_parsed {
        return vec![[true; 9]; distinct.len()];
    }
    // Row-order accumulation through the codes: identical f64 sequence to
    // the reference's `values.iter().map(as_f64).flatten()` sums.
    let mut sum = 0.0f64;
    let mut n_parsed = 0usize;
    for &c in codes {
        if let Some(x) = nums[c as usize] {
            sum += x;
            n_parsed += 1;
        }
    }
    let mean = sum / n_parsed as f64;
    let mut var_sum = 0.0f64;
    for &c in codes {
        if let Some(x) = nums[c as usize] {
            var_sum += (x - mean) * (x - mean);
        }
    }
    let var = var_sum / n_parsed as f64;
    let std = var.sqrt();
    nums.iter()
        .map(|num| {
            let mut flags = [false; 9];
            match num {
                None => flags = [true; 9],
                Some(x) => {
                    if std > 0.0 {
                        let z = (x - mean).abs() / std;
                        for (k, &theta) in DIST_THRESHOLDS.iter().enumerate() {
                            flags[k] = z > theta;
                        }
                    }
                }
            }
            flags
        })
        .collect()
}

/// The *literal* Eq. 2 histogram detector, kept for the deviation
/// ablation (`cargo run -p matelda-bench --bin ablation_deviations`):
/// normalize a value's term count by `Σ_i' TF(t[i',j])` — the sum of every
/// row's value-count. At realistic row counts every ratio lands far below
/// θ = 0.1 and the flags saturate; the ablation quantifies the damage.
pub fn histogram_flags_eq2_literal(values: &[String]) -> Vec<[bool; 9]> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in values {
        *counts.entry(v.as_str()).or_insert(0) += 1;
    }
    let denom: usize = values.iter().map(|v| counts[v.as_str()]).sum();
    values
        .iter()
        .map(|v| {
            let ratio = if denom == 0 { 0.0 } else { counts[v.as_str()] as f64 / denom as f64 };
            let mut flags = [false; 9];
            for (k, &theta) in TF_THRESHOLDS.iter().enumerate() {
                flags[k] = ratio < theta;
            }
            flags
        })
        .collect()
}

/// Both outlier families for every cell of every column of a table,
/// as `(histogram, gaussian)` row-major per column.
pub fn table_outlier_flags(table: &Table) -> Vec<(Vec<[bool; 9]>, Vec<[bool; 9]>)> {
    table
        .columns
        .iter()
        .map(|c| (histogram_flags(&c.values), gaussian_flags(&c.values, c.data_type())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn histogram_flags_rare_values_at_low_thresholds() {
        // "x" appears 9 times, "y" once: ratios 1.0 and 1/9 ≈ 0.11.
        let mut vals = vec!["x"; 9];
        vals.push("y");
        let flags = histogram_flags(&strings(&vals));
        // rare value: 0.11 — not flagged at θ = 0.1, flagged above.
        assert!(!flags[9][0]);
        assert_eq!(flags[9][1..], [true; 8]);
        // most frequent value: ratio 1.0, never flagged.
        assert_eq!(flags[0], [false; 9]);
    }

    #[test]
    fn histogram_abstains_on_all_distinct_columns() {
        // All-distinct column: every ratio is 1.0 — no signal, no flags.
        let vals: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        let flags = histogram_flags(&vals);
        assert!(flags.iter().all(|f| *f == [false; 9]));
    }

    #[test]
    fn histogram_scale_invariant_across_column_lengths() {
        // A singleton among 9 repeats scores the same whether the column
        // has 10 or 1000 rows — the cross-table comparability property.
        let short: Vec<String> =
            (0..10).map(|i| if i == 0 { "odd".into() } else { "common".to_string() }).collect();
        let long: Vec<String> =
            (0..1000).map(|i| if i == 0 { "odd".into() } else { "common".to_string() }).collect();
        let fs = histogram_flags(&short);
        let fl = histogram_flags(&long);
        // Both singletons are flagged from θ = 0.2 upward at least.
        assert!(fs[0][2..].iter().all(|&b| b));
        assert!(fl[0][2..].iter().all(|&b| b));
        // Both majorities are never flagged.
        assert_eq!(fs[5], [false; 9]);
        assert_eq!(fl[5], [false; 9]);
    }

    #[test]
    fn gaussian_flags_numeric_outlier() {
        // Ages ~20-35 with one 1995 (the running example's Jack Grealish).
        // A single outlier among n=10 points is bounded at z = 9/√10 ≈
        // 2.85 (it inflates σ itself), so it fires every threshold except
        // θ = 3.
        let vals = strings(&["24", "23", "30", "1995", "31", "30", "28", "27", "26", "25"]);
        let flags = gaussian_flags(&vals, DataType::Integer);
        assert_eq!(flags[3][..8], [true; 8], "1995 is far out: {:?}", flags[3]);
        assert_eq!(flags[0], [false; 9], "24 is an inlier");
    }

    #[test]
    fn gaussian_saturates_on_unparsable_in_numeric_column() {
        let vals = strings(&["10", "12", "11", "$13", "9", "10", "12"]);
        let flags = gaussian_flags(&vals, DataType::Integer);
        assert_eq!(flags[3], [true; 9]);
        assert_eq!(flags[0], [false; 9]);
    }

    #[test]
    fn gaussian_abstains_on_text_columns() {
        let vals = strings(&["alpha", "beta", "gamma"]);
        let flags = gaussian_flags(&vals, DataType::Text);
        assert!(flags.iter().all(|f| *f == [false; 9]));
    }

    #[test]
    fn gaussian_constant_column_all_inliers() {
        let vals = strings(&["5", "5", "5", "5"]);
        let flags = gaussian_flags(&vals, DataType::Integer);
        assert!(flags.iter().all(|f| *f == [false; 9]));
    }

    #[test]
    fn empty_column() {
        assert!(histogram_flags(&[]).is_empty());
        assert!(gaussian_flags(&[], DataType::Integer).is_empty());
    }
}
