//! Per-table string interning for zero-copy featurization.
//!
//! Every detector signal except the rule miner is a pure function of a
//! cell's *string value* (plus column-level aggregates), yet the per-cell
//! featurizer used to re-hash, re-spellcheck, and re-parse every row —
//! even though real columns hold few distinct values. Interning builds,
//! once per column, the list of distinct values in first-occurrence order
//! (borrowed from the table's own string storage — the table *is* the
//! arena, nothing is copied) plus a `u32` code per row and a count per
//! distinct value. Detectors then run once per distinct value and scatter
//! their flags through the codes.
//!
//! Exactness: codes are a pure re-indexing — the multiset of values, the
//! per-value counts, and the row order all survive unchanged, so every
//! detector computed through the intern is bit-identical to the per-cell
//! reference (pinned by the equivalence proptest in
//! [`crate::featurize`]).

use matelda_table::Table;
use std::collections::HashMap;

/// One column's interned view: distinct values, per-row codes, and
/// per-distinct occurrence counts.
#[derive(Debug, Clone)]
pub struct InternedColumn<'a> {
    /// Distinct cell values in first-occurrence order.
    pub distinct: Vec<&'a str>,
    /// `codes[row]` indexes into `distinct`.
    pub codes: Vec<u32>,
    /// `counts[code]` = number of rows holding that value.
    pub counts: Vec<usize>,
}

impl<'a> InternedColumn<'a> {
    /// Interns one column's values.
    pub fn build(values: &'a [String]) -> Self {
        let mut lookup: HashMap<&str, u32> = HashMap::new();
        let mut distinct: Vec<&'a str> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(values.len());
        for v in values {
            let code = *lookup.entry(v.as_str()).or_insert_with(|| {
                distinct.push(v.as_str());
                counts.push(0);
                (distinct.len() - 1) as u32
            });
            counts[code as usize] += 1;
            codes.push(code);
        }
        Self { distinct, codes, counts }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.codes.len()
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.distinct.len()
    }

    /// Maps a per-distinct table to a per-row iterator through the codes.
    pub fn scatter<'s, T>(&'s self, per_distinct: &'s [T]) -> impl Iterator<Item = &'s T> + 's {
        self.codes.iter().map(move |&c| &per_distinct[c as usize])
    }
}

/// All columns of a table, interned.
#[derive(Debug, Clone)]
pub struct InternedTable<'a> {
    /// One interned view per table column.
    pub columns: Vec<InternedColumn<'a>>,
}

impl<'a> InternedTable<'a> {
    /// Interns every column of `table`.
    pub fn build(table: &'a Table) -> Self {
        Self { columns: table.columns.iter().map(|c| InternedColumn::build(&c.values)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn codes_round_trip_the_column() {
        let vals = strings(&["a", "b", "a", "c", "b", "a"]);
        let ic = InternedColumn::build(&vals);
        assert_eq!(ic.distinct, vec!["a", "b", "c"]);
        assert_eq!(ic.codes, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(ic.counts, vec![3, 2, 1]);
        let back: Vec<&str> = ic.codes.iter().map(|&c| ic.distinct[c as usize]).collect();
        assert_eq!(back, vals.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_follows_row_order() {
        let vals = strings(&["x", "y", "x"]);
        let ic = InternedColumn::build(&vals);
        let per_distinct = vec![10, 20];
        let rows: Vec<i32> = ic.scatter(&per_distinct).copied().collect();
        assert_eq!(rows, vec![10, 20, 10]);
    }

    #[test]
    fn empty_column() {
        let ic = InternedColumn::build(&[]);
        assert_eq!(ic.n_rows(), 0);
        assert_eq!(ic.n_distinct(), 0);
    }
}
