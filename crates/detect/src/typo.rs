//! The typo detector `d_TD` (Eq. 4): a cell is flagged when any of its
//! alphabetic words is missing from the dictionary. Thin column-level
//! wrapper over [`matelda_text::SpellChecker`].

use matelda_text::SpellChecker;

/// Typo flags for every cell of a column.
pub fn typo_flags(values: &[String], spell: &SpellChecker) -> Vec<bool> {
    values.iter().map(|v| spell.flags_cell(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_out_of_dictionary_words_only() {
        let spell = SpellChecker::from_words(["crime", "drama", "musical"]);
        let values: Vec<String> =
            ["crime drama", "derama", "musical", "42", ""].iter().map(|s| s.to_string()).collect();
        assert_eq!(typo_flags(&values, &spell), vec![false, true, false, false, false]);
    }
}
