//! Spilling featurized tables to disk and streaming them back.
//!
//! The out-of-core driver featurizes one table at a time; holding every
//! table's [`CellFeatures`] resident until the fold stages need them
//! would rebuild exactly the allocation the blocked store avoids. This
//! module writes a table's features to one `.mtf` file through the
//! [`ChunkSource`] seam (fault-injectable when the caller passes the
//! ckpt VFS) and reloads them block by block — the reload never holds
//! more than one backing block plus the file chunk being parsed.
//!
//! The format is raw little-endian f32s behind a fixed header; the
//! values round-trip bit for bit (NaN payloads included), which the
//! in-memory/out-of-core digest contract (DESIGN.md §14) requires.

use crate::featurize::CellFeatures;
use matelda_table::chunked::{ChunkSource, ChunkedError};
use std::path::{Path, PathBuf};

/// Magic prefix of a spilled feature file.
pub const SPILL_MAGIC: &[u8; 4] = b"MTFS";
/// Spill format version; bump on any layout change.
pub const SPILL_VERSION: u32 = 1;
/// File extension of spilled feature files.
pub const SPILL_EXT: &str = "mtf";

/// The `.mtf` path for table index `t` inside `dir`.
pub fn spill_path(dir: &Path, table_index: usize) -> PathBuf {
    dir.join(format!("t{table_index:05}.{SPILL_EXT}"))
}

/// Serializes one table's features:
///
/// ```text
/// "MTFS" | version:u32 | n_cols:u64 | n_rows:u64 | dim:u64 | f32-LE × n
/// ```
pub fn encode_features(f: &CellFeatures) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 24 + f.n_values() * 4);
    out.extend_from_slice(SPILL_MAGIC);
    out.extend_from_slice(&SPILL_VERSION.to_le_bytes());
    out.extend_from_slice(&(f.n_cols as u64).to_le_bytes());
    out.extend_from_slice(&(f.n_rows as u64).to_le_bytes());
    out.extend_from_slice(&(f.dim as u64).to_le_bytes());
    for block in f.blocks() {
        for v in block {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Writes `f` to `path` atomically through the source.
pub fn spill_features(
    src: &dyn ChunkSource,
    path: &Path,
    f: &CellFeatures,
) -> Result<(), ChunkedError> {
    if let Some(dir) = path.parent() {
        src.create_dir_all(dir)?;
    }
    src.write_atomic(path, &encode_features(f))?;
    Ok(())
}

const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Reloads spilled features block by block: each ranged read fills one
/// backing block of the result, so peak memory is the features being
/// rebuilt plus a single block's bytes.
pub fn load_features(src: &dyn ChunkSource, path: &Path) -> Result<CellFeatures, ChunkedError> {
    let header = src.read_range(path, 0, HEADER_LEN)?;
    if header.len() < HEADER_LEN {
        return Err(ChunkedError::Corrupt("spill file shorter than header".into()));
    }
    if &header[..4] != SPILL_MAGIC {
        return Err(ChunkedError::Corrupt("bad spill magic".into()));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != SPILL_VERSION {
        return Err(ChunkedError::Corrupt(format!(
            "spill version {version}, expected {SPILL_VERSION}"
        )));
    }
    let n_cols = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
    let n_rows = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
    let dim = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes")) as usize;
    let total = n_rows
        .checked_mul(n_cols)
        .and_then(|c| c.checked_mul(dim))
        .ok_or_else(|| ChunkedError::Corrupt("spill shape overflows".into()))?;
    let expected_len = HEADER_LEN as u64 + total as u64 * 4;
    if src.file_len(path)? != expected_len {
        return Err(ChunkedError::Corrupt(format!(
            "spill payload length != {n_rows}x{n_cols}x{dim} values"
        )));
    }
    // Probe the block geometry from an empty instance of the same dim so
    // reload and fresh featurization share identical backing layout.
    let block_len = CellFeatures::zeros(0, 0, dim).block_len();
    let mut blocks = Vec::with_capacity(total.div_ceil(block_len.max(1)));
    let mut read = 0usize;
    while read < total {
        let this = block_len.min(total - read);
        let bytes = src.read_range(path, HEADER_LEN as u64 + read as u64 * 4, this * 4)?;
        if bytes.len() < this * 4 {
            return Err(ChunkedError::Corrupt("spill payload truncated".into()));
        }
        let mut block = Vec::with_capacity(this);
        for v in bytes.chunks_exact(4) {
            block.push(f32::from_le_bytes(v.try_into().expect("4 bytes")));
        }
        blocks.push(block);
        read += this;
    }
    Ok(CellFeatures::from_blocks(n_cols, n_rows, dim, block_len, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::chunked::StdFs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("matelda_spill_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn spill_round_trips_bit_for_bit_including_nan_payloads() {
        let dir = tmpdir("roundtrip");
        let mut f = CellFeatures::zeros(3, 4, 5);
        for row in 0..4 {
            for col in 0..3 {
                for (k, v) in f.get_mut(row, col).iter_mut().enumerate() {
                    *v = (row * 31 + col * 7 + k) as f32 * 0.25 - 3.0;
                }
            }
        }
        // Hostile payloads: negative zero, infinities, a NaN with a
        // nonstandard payload — all must survive the trip bit for bit.
        f.get_mut(0, 0)[0] = -0.0;
        f.get_mut(1, 1)[1] = f32::INFINITY;
        f.get_mut(2, 2)[2] = f32::from_bits(0x7FC0_1234);
        let path = spill_path(&dir, 7);
        spill_features(&StdFs, &path, &f).expect("spill");
        let back = load_features(&StdFs, &path).expect("load");
        assert_eq!(back.n_cols, f.n_cols);
        assert_eq!(back.n_rows, f.n_rows);
        assert_eq!(back.dim, f.dim);
        let a: Vec<u32> = f.to_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.to_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "bit-exact reload");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_features_round_trip() {
        let dir = tmpdir("empty");
        let f = CellFeatures::zeros(2, 0, 33);
        let path = spill_path(&dir, 0);
        spill_features(&StdFs, &path, &f).expect("spill");
        let back = load_features(&StdFs, &path).expect("load");
        assert_eq!(back.n_cells(), 0);
        assert_eq!(back.n_cols, 2);
        assert_eq!(back.dim, 33);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_spills_are_rejected() {
        let dir = tmpdir("corrupt");
        let f = CellFeatures::from_vectors(1, 2, &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let good = encode_features(&f);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("truncated", good[..good.len() - 3].to_vec()),
            ("bad_magic", {
                let mut b = good.clone();
                b[0] = b'X';
                b
            }),
            ("bad_version", {
                let mut b = good.clone();
                b[4] = 9;
                b
            }),
            ("short", good[..7].to_vec()),
        ];
        for (tag, bytes) in cases {
            let path = dir.join(format!("{tag}.mtf"));
            std::fs::write(&path, &bytes).expect("write");
            assert!(matches!(load_features(&StdFs, &path), Err(ChunkedError::Corrupt(_))), "{tag}");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
