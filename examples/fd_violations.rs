//! The running example of the paper (§2.1, Figure 1): mining functional
//! dependencies and spotting the "Real Madrid is in France" violation —
//! a tour of the FD substrate that powers Matelda's rule detectors.
//!
//! ```sh
//! cargo run --release --example fd_violations
//! ```

use matelda::fd::{mine_approximate, mine_exact_injectable, violation_stats};
use matelda::table::{Column, Table};

fn main() {
    // Table t3 of the paper's running example ("Clubs").
    let clubs = Table::new(
        "clubs",
        vec![
            Column::new(
                "club_name",
                [
                    "Manchester City",
                    "Liverpool MC",
                    "Manchester City",
                    "Real Madrid",
                    "Real Madrid",
                ],
            ),
            Column::new("country", ["Germany", "England", "England", "France", "Spain"]),
            Column::new("score", ["2045", "2043", "2010", "1957", "1957"]),
        ],
    );

    println!("table {:?} ({} rows):", clubs.name, clubs.n_rows());
    for row in clubs.rows() {
        println!("  {row:?}");
    }

    // Approximate FDs tolerate the dirt that exact mining would reject.
    println!("\nFDs holding with at most 40% violating rows:");
    for fd in mine_approximate(&clubs, 0.4) {
        let stats = violation_stats(&clubs, fd.lhs, fd.rhs);
        println!(
            "  {} -> {}   (g3 error {:.2}, violating rows {:?}, likely culprits {:?})",
            clubs.columns[fd.lhs].name,
            clubs.columns[fd.rhs].name,
            stats.g3_error,
            stats.violating_rows,
            stats.minority_rows,
        );
    }

    // The club_name -> country dependency is the running example's rule:
    // Manchester City maps to both Germany and England, Real Madrid to
    // both France and Spain.
    let stats = violation_stats(&clubs, 0, 1);
    println!("\nclub_name -> country:");
    println!("  violating rows:  {:?}", stats.violating_rows);
    println!("  minority cells:  {:?} (the cells a repair would change)", stats.minority_rows);
    println!("  g3 error:        {:.2}", stats.g3_error);

    // What the error generator would target on the *clean* version.
    let clean = Table::new(
        "clubs_clean",
        vec![
            Column::new(
                "club_name",
                ["Manchester City", "Liverpool", "Manchester City", "Real Madrid", "Real Madrid"],
            ),
            Column::new("country", ["England", "England", "England", "Spain", "Spain"]),
            Column::new("score", ["2045", "2043", "2010", "1957", "1957"]),
        ],
    );
    println!("\ninjectable FDs on the clean table (targets for BART-style VAD errors):");
    for fd in mine_exact_injectable(&clean) {
        println!("  {} -> {}", clean.columns[fd.lhs].name, clean.columns[fd.rhs].name);
    }
}
