//! Quickstart: detect errors in a multi-table lake with a labeling budget
//! smaller than the number of tables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use matelda::core::{Matelda, MateldaConfig, Oracle};
use matelda::lakegen::QuintetLake;
use matelda::table::Confusion;

fn main() {
    // A Quintet-shaped lake: five tables from five domains, ~9% of cells
    // dirtied with missing values, typos, formatting issues and FD
    // violations. Ground truth comes along for evaluation.
    let lake = QuintetLake::default().generate(42);
    println!(
        "lake: {} tables, {} cells, {:.1}% erroneous",
        lake.dirty.n_tables(),
        lake.dirty.n_cells(),
        100.0 * lake.error_rate()
    );

    // The "user" is simulated by an oracle that answers from ground truth
    // and counts every label it hands out.
    let mut oracle = Oracle::new(&lake.errors);

    // Budget: the cell equivalent of two labeled tuples per table — far
    // less than single-table tools need for 5 tables.
    let budget_cells = 2 * lake.dirty.n_columns();
    let result =
        Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, budget_cells);

    let conf = Confusion::from_masks(&result.predicted, &lake.errors);
    println!("labels used:   {}", result.labels_used);
    println!("domain folds:  {}", result.n_domain_folds);
    println!("quality folds: {}", result.n_quality_folds);
    println!(
        "precision {:.1}%  recall {:.1}%  f1 {:.1}%",
        100.0 * conf.precision(),
        100.0 * conf.recall(),
        100.0 * conf.f1()
    );

    // Show a few detected errors with their values.
    println!("\nsample detections:");
    for id in result.predicted.iter_set().take(8) {
        let table = &lake.dirty[id.table];
        println!(
            "  {}[{}][{}] = {:?} (truth: {})",
            table.name,
            id.row,
            table.columns[id.col].name,
            lake.dirty.cell(id),
            if lake.errors.get(id) { "error" } else { "clean" }
        );
    }
}
