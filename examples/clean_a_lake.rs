//! Cleaning a lake that lives on disk as CSV files.
//!
//! Demonstrates the I/O path a downstream user follows for their own
//! data: a directory of CSVs → `Lake` → Matelda → per-table error report.
//! For a self-contained run the example first *writes* a generated lake
//! to a temp directory, then pretends it only has those files.
//!
//! ```sh
//! cargo run --release --example clean_a_lake
//! ```

use matelda::core::{Matelda, MateldaConfig, Oracle};
use matelda::lakegen::WdcLake;
use matelda::table::{csv, Lake};
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Setup: materialize a lake as CSV files (stand-in for "your data").
    let generated = WdcLake { n_tables: 12, ..WdcLake::default() }.generate(3);
    let dir = std::env::temp_dir().join("matelda_example_lake");
    fs::create_dir_all(&dir)?;
    for table in &generated.dirty.tables {
        fs::write(dir.join(format!("{}.csv", table.name)), csv::write_table(table))?;
    }
    println!("wrote {} CSVs to {}", generated.dirty.n_tables(), dir.display());

    // --- The actual user workflow starts here: load CSVs into a Lake.
    let lake = load_lake(&dir)?;
    println!("loaded lake: {} tables, {} cells", lake.n_tables(), lake.n_cells());

    // A real deployment would plug a human labeler into the `Labeler`
    // trait; here the generator's ground truth stands in. Note the
    // *loaded* lake must align with the mask's table order, so we match
    // by the generation order (names are unique).
    let mut ordered = Vec::new();
    for t in &generated.dirty.tables {
        ordered.push(lake.table_by_name(&t.name).expect("table present").clone());
    }
    let lake = Lake::new(ordered);
    let mut oracle = Oracle::new(&generated.errors);

    let budget = lake.n_tables() * 4; // a handful of cell labels per table
    let result = Matelda::new(MateldaConfig::default()).detect(&lake, &mut oracle, budget);

    // --- Report: errors per table.
    println!("\nper-table detections ({} labels used):", result.labels_used);
    for (t, table) in lake.tables.iter().enumerate() {
        let hits = result.predicted.iter_set().filter(|id| id.table == t).count();
        println!("  {:<24} {:>4} suspicious cells of {}", table.name, hits, table.n_cells());
    }

    fs::remove_dir_all(&dir)?;
    Ok(())
}

/// Loads every `*.csv` in a directory into a [`Lake`] (sorted by name for
/// determinism).
fn load_lake(dir: &Path) -> Result<Lake, Box<dyn std::error::Error>> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    paths.sort();
    let mut tables = Vec::new();
    for path in paths {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
        let text = fs::read_to_string(&path)?;
        tables.push(csv::parse_table(&name, &text)?);
    }
    Ok(Lake::new(tables))
}
