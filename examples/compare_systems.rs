//! Comparing Matelda against the single-table state of the art under a
//! shared (and deliberately tiny) labeling budget — the paper's core
//! scenario: fewer labeled tuples than tables.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use matelda::baselines::aspell::Aspell;
use matelda::baselines::deequ::Deequ;
use matelda::baselines::raha::{Raha, RahaVariant};
use matelda::baselines::unidetect::UniDetect;
use matelda::baselines::{Budget, ErrorDetector};
use matelda::core::{Matelda, MateldaConfig};
use matelda::lakegen::DGovLake;
use matelda::table::{CellMask, Confusion, Labeler, Lake, Oracle};

/// Matelda behind the shared `ErrorDetector` interface.
struct MateldaSystem;

impl ErrorDetector for MateldaSystem {
    fn name(&self) -> String {
        "Matelda".to_string()
    }
    fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: Budget) -> CellMask {
        Matelda::new(MateldaConfig::default())
            .detect(lake, labeler, budget.total_cells(lake))
            .predicted
    }
}

fn main() {
    // 40 open-government-style tables; budget: HALF a labeled tuple per
    // table — 20 tuples for 40 tables. Single-table tools cannot even be
    // configured for this.
    let lake = DGovLake::ntr().with_n_tables(40).generate(7);
    let budget = Budget::per_table(0.5);
    println!(
        "lake: {} tables, {} cells, {:.1}% erroneous — budget {} labeled tuples total\n",
        lake.dirty.n_tables(),
        lake.dirty.n_cells(),
        100.0 * lake.error_rate(),
        budget.total_tuples(&lake.dirty),
    );

    let systems: Vec<Box<dyn ErrorDetector>> = vec![
        Box::new(MateldaSystem),
        Box::new(Raha::new(RahaVariant::RandomTables)),
        Box::new(Raha::new(RahaVariant::TwoLabelsPerCol)),
        Box::new(UniDetect::default()),
        Box::new(Aspell::new()),
        Box::new(Deequ::new()),
    ];

    println!("{:<16} {:>9} {:>9} {:>9} {:>8}", "system", "precision", "recall", "f1", "labels");
    for system in systems {
        let mut oracle = Oracle::new(&lake.errors);
        if !system.applicable(&lake.dirty, budget) {
            println!("{:<16} not applicable below 1 tuple/table", system.name());
            continue;
        }
        let predicted = system.detect(&lake.dirty, &mut oracle, budget);
        let c = Confusion::from_masks(&predicted, &lake.errors);
        println!(
            "{:<16} {:>8.1}% {:>8.1}% {:>8.1}% {:>8}",
            system.name(),
            100.0 * c.precision(),
            100.0 * c.recall(),
            100.0 * c.f1(),
            oracle.labels_used(),
        );
    }
}
