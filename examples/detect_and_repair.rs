//! Detect errors, then propose repairs — the paper's §6 future-work
//! direction, implemented as `matelda::core::suggest_repairs`.
//!
//! ```sh
//! cargo run --release --example detect_and_repair
//! ```

use matelda::core::{suggest_repairs, Matelda, MateldaConfig, Oracle};
use matelda::lakegen::QuintetLake;
use matelda::text::SpellChecker;

fn main() {
    let lake = QuintetLake::default().generate(5);
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(MateldaConfig::default()).detect(
        &lake.dirty,
        &mut oracle,
        3 * lake.dirty.n_columns(),
    );

    let spell = SpellChecker::english();
    let repairs = suggest_repairs(&lake.dirty, &result.predicted, &spell);

    // Grade against ground truth: a repair is correct when it restores
    // the clean value exactly.
    let mut correct = 0usize;
    println!("{:<14} {:<22} {:<22} {:<12} conf", "strategy", "current", "proposed", "truth?");
    for r in repairs.iter().take(20) {
        let truth = lake.clean.cell(r.cell);
        let ok = r.proposed == truth;
        println!(
            "{:<14} {:<22} {:<22} {:<12} {:.2}",
            format!("{:?}", r.strategy),
            truncate(&r.current),
            truncate(&r.proposed),
            if ok { "restored" } else { "different" },
            r.confidence
        );
    }
    for r in &repairs {
        if r.proposed == lake.clean.cell(r.cell) {
            correct += 1;
        }
    }
    println!(
        "\n{} repairs proposed for {} detections; {} ({:.0}%) restore the exact clean value",
        repairs.len(),
        result.predicted.count(),
        correct,
        100.0 * correct as f64 / repairs.len().max(1) as f64
    );
}

fn truncate(s: &str) -> String {
    if s.chars().count() > 20 {
        let t: String = s.chars().take(17).collect();
        format!("{t}...")
    } else if s.is_empty() {
        "(empty)".to_string()
    } else {
        s.to_string()
    }
}
