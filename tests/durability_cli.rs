//! Subprocess crash-recovery suite: the acceptance test for the
//! durability tentpole at the process level.
//!
//! Where `crates/chaos/tests/durability.rs` simulates interruptions
//! in-process, this suite actually kills the compiled `matelda-cli`
//! binary mid-run via the `MATELDA_CKPT_CRASH` hook — right after a
//! chosen stage's snapshot commits, or halfway through writing one
//! (a torn snapshot planted under the final name). The contract:
//!
//! * a run killed at *every* checkpoint boundary, then resumed with
//!   `--resume`, prints the exact result digest of an uninterrupted
//!   run — including when the resume uses a different `--threads`;
//! * a torn snapshot is rejected with exit code 5 (never silently
//!   reused), and a fresh non-resume run over the same directory
//!   recovers by sweeping and recomputing.

use matelda::lakegen::QuintetLake;
use matelda::table::write_lake_to_dir;
use matelda_chaos::{CrashMode, FaultPlan, CRASH_ENV, STAGE_NAMES};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BUDGET: &str = "20";

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_matelda-cli"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("matelda_durability_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes a small dirty/clean lake pair under a fresh temp root.
fn write_lake(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let root = tmp_dir(tag);
    let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(41);
    let dirty = root.join("dirty");
    let clean = root.join("clean");
    write_lake_to_dir(&lake.dirty, &dirty).expect("write dirty lake");
    write_lake_to_dir(&lake.clean, &clean).expect("write clean lake");
    (root, dirty, clean)
}

/// One `detect` invocation; `crash` is a `MATELDA_CKPT_CRASH` directive
/// for the child process.
fn detect(
    dirty: &Path,
    clean: &Path,
    ckpt: Option<(&Path, bool)>,
    threads: usize,
    crash: Option<&str>,
) -> Output {
    let mut cmd = cli();
    cmd.args(["detect", dirty.to_str().unwrap(), "--clean", clean.to_str().unwrap()]).args([
        "--budget-cells",
        BUDGET,
        "--threads",
        &threads.to_string(),
    ]);
    if let Some((dir, resume)) = ckpt {
        cmd.args(["--checkpoint-dir", dir.to_str().unwrap()]);
        if resume {
            cmd.arg("--resume");
        }
    }
    if let Some(directive) = crash {
        cmd.env(CRASH_ENV, directive);
    }
    cmd.output().expect("spawn matelda-cli detect")
}

/// The `digest: <hex>` line: an order-stable FNV-1a over everything the
/// durability contract promises to reproduce.
fn digest_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "run failed ({:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest: "))
        .unwrap_or_else(|| panic!("no digest line in: {stdout}"))
        .to_string()
}

#[test]
fn killed_at_every_boundary_then_resumed_prints_the_clean_digest() {
    let (root, dirty, clean) = write_lake("boundaries");
    let reference = digest_of(&detect(&dirty, &clean, None, 2, None));

    for (k, stage) in STAGE_NAMES.iter().enumerate() {
        let ckpt = root.join(format!("ckpt_{stage}"));
        // Kill a 4-thread run right after this stage's snapshot commits.
        let crashed =
            detect(&dirty, &clean, Some((&ckpt, false)), 4, Some(&format!("after:{stage}")));
        assert!(!crashed.status.success(), "{stage}: the crash directive must abort the child");
        assert!(ckpt.join(format!("{stage}.ckpt")).is_file(), "{stage}: snapshot must survive");
        if let Some(next) = STAGE_NAMES.get(k + 1) {
            assert!(
                !ckpt.join(format!("{next}.ckpt")).exists(),
                "{stage}: no snapshot past the crash point"
            );
        }
        // Resume — cycling the thread count, which is outside the
        // manifest — and compare the result digest with the clean run.
        let threads = [1, 2, 4][k % 3];
        let resumed = digest_of(&detect(&dirty, &clean, Some((&ckpt, true)), threads, None));
        assert_eq!(resumed, reference, "boundary {stage}, resumed at {threads} threads");
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn one_boundary_resumes_identically_at_one_two_and_four_threads() {
    let (root, dirty, clean) = write_lake("threads");
    let reference = digest_of(&detect(&dirty, &clean, None, 1, None));

    // Crash once, mid-pipeline, then resume the same wreckage at each
    // thread count (fresh copies — resume re-commits missing snapshots,
    // and each copy must start from the genuine crash state).
    let master = root.join("ckpt_master");
    let crashed = detect(&dirty, &clean, Some((&master, false)), 4, Some("after:domain_folds"));
    assert!(!crashed.status.success());
    for threads in [1usize, 2, 4] {
        let copy = root.join(format!("ckpt_t{threads}"));
        std::fs::create_dir_all(&copy).expect("mkdir");
        for entry in std::fs::read_dir(&master).expect("read master") {
            let p = entry.expect("entry").path();
            std::fs::copy(&p, copy.join(p.file_name().unwrap())).expect("copy snapshot");
        }
        let resumed = digest_of(&detect(&dirty, &clean, Some((&copy, true)), threads, None));
        assert_eq!(resumed, reference, "resume at {threads} threads");
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn torn_mid_write_snapshot_is_rejected_then_recoverable() {
    let (root, dirty, clean) = write_lake("torn");
    let reference = digest_of(&detect(&dirty, &clean, None, 2, None));

    // The chaos plan picks the boundary seed-deterministically; the
    // store then plants a half-written snapshot under the final name
    // (the corruption class atomic rename cannot prevent) and aborts.
    let directive = FaultPlan::new(9).crash_directive(CrashMode::TornWrite);
    let ckpt = root.join("ckpt");
    let crashed = detect(&dirty, &clean, Some((&ckpt, false)), 2, Some(&directive.env_value()));
    assert!(!crashed.status.success(), "torn-write directive must abort the child");
    let torn = ckpt.join(format!("{}.ckpt", directive.stage));
    assert!(torn.is_file(), "the torn snapshot must exist under the final name");

    // Resume must reject it: exit code 5, structured corruption report.
    let rejected = detect(&dirty, &clean, Some((&ckpt, true)), 2, None);
    assert_eq!(rejected.status.code(), Some(5), "corrupt snapshot exits 5");
    let stderr = String::from_utf8_lossy(&rejected.stderr);
    assert!(stderr.contains("corrupt checkpoint"), "stderr must name the corruption: {stderr}");

    // A fresh (non-resume) run sweeps the directory and recomputes …
    let fresh = digest_of(&detect(&dirty, &clean, Some((&ckpt, false)), 2, None));
    assert_eq!(fresh, reference, "recovery run");
    // … after which resume works again, restoring every stage.
    let resumed = digest_of(&detect(&dirty, &clean, Some((&ckpt, true)), 2, None));
    assert_eq!(resumed, reference, "post-recovery resume");
    std::fs::remove_dir_all(&root).expect("cleanup");
}
