//! Integration tests for the baseline systems on shared generated lakes:
//! the qualitative profiles the paper reports must hold.

use matelda::baselines::aspell::Aspell;
use matelda::baselines::deequ::Deequ;
use matelda::baselines::gx::Gx;
use matelda::baselines::holodetect::HoloDetect;
use matelda::baselines::raha::{Raha, RahaVariant};
use matelda::baselines::unidetect::UniDetect;
use matelda::baselines::{Budget, ErrorDetector};
use matelda::lakegen::{DGovLake, QuintetLake};
use matelda::table::{Confusion, Labeler, Oracle};

fn eval(system: &dyn ErrorDetector, lake: &matelda::lakegen::GeneratedLake, b: f64) -> Confusion {
    let mut oracle = Oracle::new(&lake.errors);
    let predicted = system.detect(&lake.dirty, &mut oracle, Budget::per_table(b));
    Confusion::from_masks(&predicted, &lake.errors)
}

#[test]
fn raha_standard_improves_with_budget() {
    let lake = QuintetLake { rows_per_table: 60, ..Default::default() }.generate(21);
    let low = eval(&Raha::new(RahaVariant::Standard), &lake, 2.0);
    let high = eval(&Raha::new(RahaVariant::Standard), &lake, 10.0);
    assert!(high.f1() > low.f1(), "raha {} -> {}", low.f1(), high.f1());
    assert!(high.f1() > 0.4, "raha at 10 tuples should be strong: {}", high.f1());
}

#[test]
fn lpc_variants_trade_recall_for_precision() {
    // §4.2: "Raha-2LPC and Raha-20LPC achieve generally high precision …
    // the overall recall suffers significantly."
    let lake = DGovLake::ntr().with_n_tables(24).generate(13);
    let c20 = eval(&Raha::new(RahaVariant::TwentyLabelsPerCol), &lake, 2.0);
    assert!(
        c20.recall() < 0.4,
        "20LPC recall should collapse (few columns treated): {}",
        c20.recall()
    );
}

#[test]
fn unsupervised_systems_use_no_labels() {
    let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(2);
    for system in
        [&Aspell::new() as &dyn ErrorDetector, &UniDetect::default(), &Deequ::new(), &Gx::new()]
    {
        let mut oracle = Oracle::new(&lake.errors);
        let _ = system.detect(&lake.dirty, &mut oracle, Budget::per_table(5.0));
        assert_eq!(oracle.labels_used(), 0, "{} drew labels", system.name());
    }
}

#[test]
fn unidetect_precision_exceeds_recall() {
    // §4.2: Uni-Detect is precision-oriented with very low recall.
    let lake = DGovLake::ntr().with_n_tables(24).generate(17);
    let c = eval(&UniDetect::default(), &lake, 0.0);
    assert!(c.precision() > c.recall(), "p {} <= r {}", c.precision(), c.recall());
    assert!(c.recall() < 0.5, "recall should be low: {}", c.recall());
}

#[test]
fn gx_is_near_zero_and_oracle_catches_only_mvs() {
    let lake = QuintetLake { rows_per_table: 60, ..Default::default() }.generate(19);
    let dirty_profile = eval(&Gx::new(), &lake, 0.0);
    assert!(dirty_profile.f1() < 0.1, "GX near-zero expected: {}", dirty_profile.f1());

    let oracle_sys = Gx::oracle(lake.clean.clone());
    let mut oracle = Oracle::new(&lake.errors);
    let predicted = oracle_sys.detect(&lake.dirty, &mut oracle, Budget::per_table(0.0));
    // Everything GX-Oracle catches must be a missing-value error.
    let mv_mask = lake
        .typed_errors
        .iter()
        .find(|(n, _)| n == "MV")
        .map(|(_, m)| m.clone())
        .expect("Quintet has MVs");
    let outside_mv = predicted.minus(&mv_mask).count();
    let total = predicted.count();
    assert!(
        (outside_mv as f64) < 0.2 * total as f64,
        "GX-Oracle should mostly catch MVs: {outside_mv} of {total} outside"
    );
}

#[test]
fn deequ_oracle_beats_deequ_dirty() {
    let lake = QuintetLake { rows_per_table: 60, ..Default::default() }.generate(23);
    let dirty_profile = eval(&Deequ::new(), &lake, 0.0);
    let clean_profile = eval(&Deequ::oracle(lake.clean.clone()), &lake, 0.0);
    assert!(
        clean_profile.f1() > dirty_profile.f1(),
        "oracle {} <= dirty {}",
        clean_profile.f1(),
        dirty_profile.f1()
    );
}

#[test]
fn holodetect_is_the_slowest_supervised_system() {
    // §4.2's resource notes: HoloDetect is the heavyweight. Compare
    // wall-clock against Raha on the same lake and budget.
    let lake = QuintetLake { rows_per_table: 80, ..Default::default() }.generate(29);
    let clock = |sys: &dyn ErrorDetector| {
        let mut oracle = Oracle::new(&lake.errors);
        let start = std::time::Instant::now();
        let _ = sys.detect(&lake.dirty, &mut oracle, Budget::per_table(5.0));
        start.elapsed().as_secs_f64()
    };
    let holo = clock(&HoloDetect::default());
    let aspell = clock(&Aspell::new());
    assert!(holo > aspell, "HoloDetect {holo}s should dwarf ASPELL {aspell}s");
}

#[test]
fn aspell_profile_on_typo_heavy_lake() {
    // §4.4: ASPELL is a reasonable alternative when only typos are
    // expected — DGov-Typo is its best case.
    let typo_lake = DGovLake::typo().with_n_tables(16).generate(3);
    let rv_lake = DGovLake::rv().with_n_tables(16).generate(3);
    let on_typo = eval(&Aspell::new(), &typo_lake, 0.0);
    let on_rv = eval(&Aspell::new(), &rv_lake, 0.0);
    assert!(
        on_typo.f1() > on_rv.f1() + 0.1,
        "ASPELL typo-lake {} vs rv-lake {}",
        on_typo.f1(),
        on_rv.f1()
    );
}
