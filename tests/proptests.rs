//! Property-based tests over the core data structures and invariants,
//! spanning crates (proptest).

use matelda::cluster::kmeans::MiniBatchKMeansConfig;
use matelda::cluster::{agglomerative, Hdbscan, MiniBatchKMeans, NOISE};
use matelda::core::{LabelingStrategy, Matelda, MateldaConfig, Oracle, TrainingStrategy};
use matelda::embed::MinHashSketch;
use matelda::errorgen::{inject, ErrorSpec};
use matelda::lakegen::QuintetLake;
use matelda::ml::{GradientBoostingClassifier, GradientBoostingConfig};
use matelda::table::profile::ColumnProfile;
use matelda::table::{csv, diff_lakes, CellId, CellMask, Column, Labeler, Lake, Table};
use matelda::text::{damerau_levenshtein, levenshtein};
use proptest::prelude::*;

/// Strategy: a small table of printable cells.
fn arb_table() -> impl Strategy<Value = Table> {
    let cell = "[ -~]{0,12}"; // printable ASCII, short
    (2usize..6, 2usize..20).prop_flat_map(move |(cols, rows)| {
        proptest::collection::vec(proptest::collection::vec(cell, rows), cols).prop_map(
            move |columns| {
                Table::new(
                    "t",
                    columns
                        .into_iter()
                        .enumerate()
                        .map(|(i, values)| Column::new(format!("c{i}"), values))
                        .collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_any_table(table in arb_table()) {
        let text = csv::write_table(&table);
        let back = csv::parse_table("t", &text).expect("own output parses");
        prop_assert_eq!(table, back);
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}") {
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Damerau never exceeds Levenshtein.
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn mask_algebra_laws(cells_a in proptest::collection::vec((0usize..4, 0usize..8), 0..16),
                         cells_b in proptest::collection::vec((0usize..4, 0usize..8), 0..16)) {
        let table = Table::new("t", (0..4).map(|i| Column::new(format!("c{i}"), vec!["x"; 8])).collect());
        let lake = Lake::new(vec![table]);
        let a = CellMask::from_cells(&lake, cells_a.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let b = CellMask::from_cells(&lake, cells_b.iter().map(|&(c, r)| CellId::new(0, r, c)));
        // |A| = |A∧B| + |A∖B|
        prop_assert_eq!(a.count(), a.and(&b).count() + a.minus(&b).count());
        // |A∨B| = |A| + |B| - |A∧B|
        prop_assert_eq!(a.or(&b).count(), a.count() + b.count() - a.and(&b).count());
        // Idempotence and commutativity.
        prop_assert_eq!(a.and(&a).count(), a.count());
        prop_assert_eq!(a.or(&b).count(), b.or(&a).count());
    }

    #[test]
    fn injection_report_matches_diff(seed in 0u64..500, rate in 0.01f64..0.4) {
        let clean = Table::new(
            "t",
            vec![
                Column::new("id", (0..30).map(|i| i.to_string())),
                Column::new("city", (0..30).map(|i| ["Paris", "Rome", "Oslo"][i % 3].to_string())),
                Column::new("country", (0..30).map(|i| ["France", "Italy", "Norway"][i % 3].to_string())),
                Column::new("n", (0..30).map(|i| (100 + 7 * i).to_string())),
            ],
        );
        let (dirty, report) = inject(&clean, &ErrorSpec::all_types(rate, seed));
        let lake_dirty = Lake::new(vec![dirty]);
        let lake_clean = Lake::new(vec![clean]);
        let mask = diff_lakes(&lake_dirty, &lake_clean);
        // The report and the diff agree exactly.
        prop_assert_eq!(mask.count(), report.len());
        for &(r, c, _) in &report.injected {
            prop_assert!(mask.get(CellId::new(0, r, c)));
        }
    }

    #[test]
    fn kmeans_assignments_are_valid(points in proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 3), 1..40), k in 1usize..8, seed in 0u64..100) {
        let fit = MiniBatchKMeans::new(MiniBatchKMeansConfig { k, seed, ..Default::default() })
            .fit(&points);
        prop_assert_eq!(fit.assignments.len(), points.len());
        let n_centers = fit.centers.len();
        prop_assert!(n_centers <= k.max(1));
        for &a in &fit.assignments {
            prop_assert!(a < n_centers);
        }
    }

    #[test]
    fn hdbscan_labels_are_dense_or_noise(points in proptest::collection::vec(
        proptest::collection::vec(-50.0f32..50.0, 2), 0..30)) {
        let labels = Hdbscan::default().fit_points(&points);
        prop_assert_eq!(labels.len(), points.len());
        let max = labels.iter().copied().max().unwrap_or(NOISE);
        for l in &labels {
            prop_assert!(*l == NOISE || (0..=max).contains(l));
        }
        // Every non-noise label in 0..=max actually occurs (dense).
        for want in 0..=max.max(0) {
            if max >= 0 {
                prop_assert!(labels.contains(&want));
            }
        }
    }

    #[test]
    fn agglomerative_respects_k(n in 1usize..25, k in 1usize..10, seed in 0u64..50) {
        // Pseudo-random but deterministic positions derived from the seed.
        let pos: Vec<f64> = (0..n).map(|i| {
            let h = (seed.wrapping_mul(31).wrapping_add(i as u64)).wrapping_mul(2654435761);
            (h % 1000) as f64 / 10.0
        }).collect();
        let labels = agglomerative(n, k, |a, b| (pos[a] - pos[b]).abs());
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        prop_assert!(distinct.len() <= k.clamp(1, n));
        prop_assert_eq!(labels.len(), n);
    }

    #[test]
    fn gbm_fits_its_training_data_when_separable(split in 1usize..19) {
        // Linearly separable by construction -> boosting must fit it.
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= split).collect();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        for (xi, &yi) in x.iter().zip(&y) {
            prop_assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn minhash_estimates_stay_in_unit_interval_and_bound_error(
        a_size in 1usize..60, overlap in 0usize..40, seed in 0u64..50) {
        let overlap = overlap.min(a_size);
        let a: Vec<String> = (0..a_size).map(|i| format!("s{seed}_{i}")).collect();
        let b: Vec<String> = (a_size - overlap..a_size + 30)
            .map(|i| format!("s{seed}_{i}"))
            .collect();
        let sa = MinHashSketch::of(&a, 256);
        let sb = MinHashSketch::of(&b, 256);
        let est = sa.jaccard(&sb);
        prop_assert!((0.0..=1.0).contains(&est));
        // True Jaccard.
        let union = a_size + 30;
        let truth = overlap as f64 / union as f64;
        // 256 slots: allow a generous 5-sigma band (~0.16).
        prop_assert!((est - truth).abs() < 0.2, "est {est} vs true {truth}");
    }

    #[test]
    fn column_profile_invariants(values in proptest::collection::vec("[ -~]{0,8}", 0..40)) {
        let p = ColumnProfile::of(&Column::new("c", values.clone()));
        prop_assert_eq!(p.n_rows, values.len());
        prop_assert!(p.n_nulls <= p.n_rows);
        prop_assert!(p.n_distinct <= p.n_rows.max(1) || p.n_rows == 0);
        prop_assert!((0.0..=1.0).contains(&p.completeness()));
        prop_assert!(p.entropy_bits >= 0.0);
        let max_entropy = if p.n_rows == 0 { 0.0 } else { (p.n_rows as f64).log2() };
        prop_assert!(p.entropy_bits <= max_entropy + 1e-9);
        prop_assert!(p.top_values.len() <= 5);
        if let Some(s) = p.numeric {
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
            prop_assert!(s.quartiles[0] <= s.quartiles[1] && s.quartiles[1] <= s.quartiles[2]);
        }
    }

    #[test]
    fn garbage_csv_never_panics_and_repair_stays_rectangular(
        bytes in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..300)) {
        // Arbitrary bytes — control characters, stray quotes, invalid
        // UTF-8 turned into replacement chars, half-records.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Strict parsing may reject the input but must never panic.
        let _ = csv::parse_table("t", &text);
        // Repair parsing: whatever it salvages is rectangular — every
        // row width agrees with the header.
        if let Ok((table, _)) = csv::parse_table_repair("t", &text) {
            for col in &table.columns {
                prop_assert_eq!(col.values.len(), table.n_rows());
            }
        }
    }

    #[test]
    fn confusion_counts_partition_the_lake(cells_t in proptest::collection::vec((0usize..3, 0usize..6), 0..10),
                                           cells_p in proptest::collection::vec((0usize..3, 0usize..6), 0..10)) {
        let table = Table::new("t", (0..3).map(|i| Column::new(format!("c{i}"), vec!["v"; 6])).collect());
        let lake = Lake::new(vec![table]);
        let truth = CellMask::from_cells(&lake, cells_t.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let pred = CellMask::from_cells(&lake, cells_p.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let conf = matelda::table::Confusion::from_masks(&pred, &truth);
        prop_assert_eq!(conf.tp + conf.fp + conf.fn_ + conf.tn, lake.n_cells());
    }

    // Metric identities backing the accuracy contract (DESIGN.md §13):
    // every derived metric is a finite number in [0, 1] for *any* mask
    // pair — including empty truth and empty predictions, where the
    // denominators vanish — so the eval matrix never records a NaN.
    #[test]
    fn derived_metrics_stay_in_unit_interval_and_finite(
        cells_t in proptest::collection::vec((0usize..3, 0usize..6), 0..12),
        cells_p in proptest::collection::vec((0usize..3, 0usize..6), 0..12)) {
        let table = Table::new("t", (0..3).map(|i| Column::new(format!("c{i}"), vec!["v"; 6])).collect());
        let lake = Lake::new(vec![table]);
        let truth = CellMask::from_cells(&lake, cells_t.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let pred = CellMask::from_cells(&lake, cells_p.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let conf = matelda::table::Confusion::from_masks(&pred, &truth);
        for (name, v) in [("precision", conf.precision()), ("recall", conf.recall()), ("f1", conf.f1())] {
            prop_assert!(v.is_finite(), "{name} = {v} is not finite");
            prop_assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0, 1]");
        }
    }

    // Swapping predicted and truth transposes the confusion matrix:
    // tp and tn are symmetric, fp and fn trade places — so precision
    // and recall trade places too.
    #[test]
    fn swapping_predicted_and_truth_transposes_the_confusion(
        cells_t in proptest::collection::vec((0usize..3, 0usize..6), 0..12),
        cells_p in proptest::collection::vec((0usize..3, 0usize..6), 0..12)) {
        let table = Table::new("t", (0..3).map(|i| Column::new(format!("c{i}"), vec!["v"; 6])).collect());
        let lake = Lake::new(vec![table]);
        let truth = CellMask::from_cells(&lake, cells_t.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let pred = CellMask::from_cells(&lake, cells_p.iter().map(|&(c, r)| CellId::new(0, r, c)));
        let fwd = matelda::table::Confusion::from_masks(&pred, &truth);
        let rev = matelda::table::Confusion::from_masks(&truth, &pred);
        prop_assert_eq!(fwd.tp, rev.tp);
        prop_assert_eq!(fwd.tn, rev.tn);
        prop_assert_eq!(fwd.fp, rev.fn_);
        prop_assert_eq!(fwd.fn_, rev.fp);
        prop_assert_eq!(fwd.precision(), rev.recall());
        prop_assert_eq!(fwd.recall(), rev.precision());
    }
}

// Directory-level ingestion robustness: each case touches the file
// system, so the block runs a reduced case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn garbage_files_never_break_tolerant_lake_ingestion(
        bytes in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..300)) {
        use matelda::table::{read_lake_from_dir_with, ReadOptions};
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "matelda_prop_ingest_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("garbage.csv"), &bytes).expect("write garbage");
        std::fs::write(dir.join("good.csv"), "a,b\n1,2\n3,4\n").expect("write good");
        for options in [ReadOptions::repair(), ReadOptions::skip()] {
            let loaded = read_lake_from_dir_with(&dir, &options);
            prop_assert!(loaded.is_ok(), "tolerant mode failed: {loaded:?}");
            let (lake, report) = loaded.unwrap();
            prop_assert_eq!(report.files.len(), 2);
            // The well-formed file always loads; every loaded table is
            // rectangular regardless of what the garbage parsed into.
            prop_assert!(lake.tables.iter().any(|t| t.name == "good"));
            for t in &lake.tables {
                for col in &t.columns {
                    prop_assert_eq!(col.values.len(), t.n_rows(), "{} ragged", t.name);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// Snapshot durability (DESIGN.md §6): encode → decode round-trips
// bit-identically for arbitrary stage artifacts, and decoding arbitrary
// truncated or garbled bytes is a structured error, never a panic or a
// bogus allocation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips_arbitrary_artifacts_bit_identically(
        vecs in proptest::collection::vec(
            proptest::collection::vec((0u64..u64::MAX).prop_map(|b| f32::from_bits(b as u32)), 0..8),
            0..6),
        tables in proptest::collection::vec(0usize..32, 0..4),
        faults in proptest::collection::vec(("[a-z]{1,8}", 0usize..64, "[ -~]{0,16}"), 0..4),
        cut in 0.0f64..1.0,
    ) {
        use matelda::core::{decode_snapshot, encode_snapshot, CtxState, EmbeddedLake, ItemFault};
        let mut state = CtxState::default();
        state.quarantine.tables = tables;
        for (stage, index, message) in faults {
            state.faults.push(ItemFault { stage, index, message });
        }
        // f32s come from arbitrary bit patterns, so NaNs, infinities and
        // subnormals are all on the table — the codec must carry the
        // exact bits, not a formatted value.
        let artifact = EmbeddedLake::Vectors(vecs);
        let bytes = encode_snapshot(&state, &artifact);
        let (state2, artifact2) =
            decode_snapshot::<EmbeddedLake>(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode_snapshot(&state2, &artifact2), bytes.clone());
        // Any strict prefix (a torn write) must fail to decode.
        let cut = ((bytes.len() as f64) * cut) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_snapshot::<EmbeddedLake>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn prediction_mask_snapshots_round_trip_bit_identically(
        dims in proptest::collection::vec((1usize..5, 1usize..6), 1..4),
        picks in proptest::collection::vec((0usize..4, 0usize..8, 0usize..8), 0..20),
    ) {
        use matelda::core::{decode_snapshot, encode_snapshot, CtxState, Predictions};
        let mut mask = CellMask::from_dims(dims.clone());
        for (t, r, c) in picks {
            let t = t % dims.len();
            let (rows, cols) = dims[t];
            mask.set(CellId::new(t, r % rows, c % cols), true);
        }
        let bytes = encode_snapshot(&CtxState::default(), &Predictions { mask });
        let (state, predictions) = decode_snapshot::<Predictions>(&bytes).expect("decodes");
        prop_assert_eq!(encode_snapshot(&state, &predictions), bytes);
    }

    #[test]
    fn snapshot_decode_of_arbitrary_bytes_is_an_error_never_a_panic(
        bytes in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..256),
    ) {
        use matelda::ckpt::store::decode_envelope;
        use matelda::ckpt::Manifest;
        use matelda::core::{decode_snapshot, encode_snapshot, EmbeddedLake};
        // If random bytes happen to decode, they must re-encode to
        // themselves; in every other case the error is structured. No
        // input may panic or trigger a length-prefix-sized allocation.
        if let Ok((state, artifact)) = decode_snapshot::<EmbeddedLake>(&bytes) {
            prop_assert_eq!(encode_snapshot(&state, &artifact), bytes.clone());
        }
        // Envelope and manifest share the contract; random bytes lack
        // the magic tags, so these always fail — structuredly.
        prop_assert!(decode_envelope(&bytes).is_err());
        prop_assert!(Manifest::decode(&bytes).is_err());
    }
}

// Quality-based cell folding (paper §3.3, Alg. 1 line 13): clustering a
// domain fold must *partition* its cells — every cell in exactly one
// quality fold — for any k / batch size / iteration count, and the
// centroid-nearest sample must not depend on the order the member cells
// were inserted in.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quality_folds_exactly_partition_the_cells(
        cols in 1usize..4,
        rows in 1usize..12,
        k in 1usize..12,
        batch_size in 1usize..128,
        iterations in 0usize..40,
        seed in 0u64..1000,
    ) {
        use matelda::core::quality_fold::quality_folds;
        use matelda::core::Fold;
        use matelda::detect::CellFeatures;

        let table = Table::new(
            "t",
            (0..cols).map(|c| Column::new(format!("c{c}"), vec!["v"; rows])).collect(),
        );
        let lake = Lake::new(vec![table]);
        // Synthetic 2-dim features derived from the seed: clustering must
        // partition regardless of the geometry, so arbitrary values are
        // fine (and cheaper than running the real featurizer per case).
        let feat = |r: usize, c: usize, d: u64| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((r * cols + c) as u64) << 8 | d)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            (h % 1024) as f32 / 64.0
        };
        let vectors: Vec<Vec<f32>> = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| vec![feat(r, c, 0), feat(r, c, 1)]))
            .collect();
        let features = vec![CellFeatures::from_vectors(cols, rows, &vectors)];
        let fold = Fold { columns: (0..cols).map(|c| (0, c)).collect() };

        let qf = quality_folds(&lake, &fold, &features, k, batch_size, iterations, seed);
        prop_assert!(!qf.is_empty());
        prop_assert!(qf.len() <= k.max(1));
        prop_assert!(qf.iter().all(|q| !q.cells.is_empty()), "no empty folds survive");
        // Exact partition: the union of the folds' members is the fold's
        // cell set, each cell exactly once.
        let mut got: Vec<CellId> = qf.iter().flat_map(|q| q.cells.iter().copied()).collect();
        got.sort_unstable();
        let mut want: Vec<CellId> = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| CellId::new(0, r, c)))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sample_is_invariant_under_cell_insertion_order(
        n in 1usize..24,
        perm_seed in 0u64..1000,
        n_distinct in 1usize..5,
    ) {
        use matelda::core::quality_fold::QualityFold;

        // Each cell gets one of a few shared feature vectors, so ties —
        // several members equidistant from the centroid — are common by
        // construction. The documented tie-break is "smallest CellId".
        let palette: Vec<Vec<f32>> =
            (0..n_distinct).map(|i| vec![i as f32, (i * i) as f32 * 0.5]).collect();
        let which = |id: CellId| (id.row * 7 + id.col * 13 + id.table) % n_distinct;
        let get = |id: CellId| palette[which(id)].as_slice();

        let cells: Vec<CellId> =
            (0..n).map(|i| CellId::new(i % 2, i / 3, i % 5)).collect();
        let centroid = vec![0.6, 0.4];
        let fold = QualityFold { cells: cells.clone(), centroid: centroid.clone() };
        let picked = fold.sample(&get);

        // The winner is the min-distance member, ties to the smallest id
        // — computed independently here, order-free.
        let dist = |id: CellId| {
            let f = get(id);
            (f[0] - centroid[0]).powi(2) + (f[1] - centroid[1]).powi(2)
        };
        let expected = *cells
            .iter()
            .min_by(|a, b| {
                dist(**a).partial_cmp(&dist(**b)).unwrap().then(a.cmp(b))
            })
            .expect("non-empty");
        prop_assert_eq!(picked, expected);

        // Fisher–Yates with a seed-derived LCG: any insertion order of
        // the same member set yields the same sample.
        let mut shuffled = cells.clone();
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let reordered = QualityFold { cells: shuffled, centroid };
        prop_assert_eq!(reordered.sample(&get), picked);
    }
}

// Each case below runs the whole pipeline, so this block uses a reduced
// case count; the grid of strategies × budgets × threads still covers the
// clamp's edge cases (budget < 2 × n_folds, budget 0).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn budget_is_a_hard_ceiling_on_labels(
        budget in 0usize..50,
        seed in 1u64..20,
        labeling in 0usize..2,
        training in 0usize..3,
        threads in 1usize..4,
    ) {
        // Full-pipeline invariant behind the budget_per_fold clamp: no
        // configuration may spend more oracle labels than the budget,
        // including budget < 2 × n_folds (where the old per-fold floor
        // overspent) and budget 0.
        let lake = QuintetLake { rows_per_table: 12, ..Default::default() }.generate(seed);
        let config = MateldaConfig {
            labeling: [LabelingStrategy::CentroidPerFold,
                       LabelingStrategy::UncertaintyRefinement][labeling],
            training: [TrainingStrategy::PerColumn,
                       TrainingStrategy::PerDomainFold,
                       TrainingStrategy::UnlabeledCellFolds][training],
            threads,
            ..Default::default()
        };
        let mut oracle = Oracle::new(&lake.errors);
        let result = Matelda::new(config).detect(&lake.dirty, &mut oracle, budget);
        prop_assert!(
            result.labels_used <= budget,
            "spent {} labels with budget {budget}", result.labels_used
        );
        prop_assert!(oracle.labels_used() <= budget);
    }
}

// ---------------------------------------------------------------------------
// Storage fault injection (ISSUE 8): the VFS seam's atomicity contract
// holds under arbitrary errno-level faults. An atomic-write target is
// always absent or fully decodable (never torn bytes under the final
// name — the one deliberate exception, `TornRename`, models the *disk*
// breaking that promise, and the checksum layer detects it), and the
// stores built on the seam fail structurally, never by panicking.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn faulted_atomic_writes_leave_targets_absent_or_fully_decodable(
        site in 0u64..6,
        kind_pick in 0usize..3,
        has_old in 0u8..2,
        old_payload in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..64),
        new_payload in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..64),
    ) {
        use matelda::ckpt::{decode_envelope, encode_envelope, FaultKind, InjectAt, Vfs};
        let kind = [
            FaultKind::Errno(std::io::ErrorKind::StorageFull),
            FaultKind::Errno(std::io::ErrorKind::Other),
            FaultKind::ShortWrite,
        ][kind_pick];
        let dir = unique_tmp_dir("vfs_decode_or_absent");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("artifact.ckpt");
        let old_bytes = encode_envelope(7, "stage", &old_payload);
        let new_bytes = encode_envelope(7, "stage", &new_payload);
        if has_old == 1 {
            Vfs::real().write_atomic(&target, &old_bytes).unwrap();
        }

        // One fault somewhere in (or past) the 5-op commit sequence.
        let vfs = Vfs::with_injector(InjectAt::new(site, kind));
        let _ = vfs.write_atomic(&target, &new_bytes);

        match std::fs::read(&target) {
            Ok(bytes) => {
                let (key, stage, payload) =
                    decode_envelope(&bytes).expect("target under the final name must decode");
                prop_assert_eq!(key, 7);
                prop_assert_eq!(stage, "stage");
                prop_assert!(
                    payload == old_payload || payload == new_payload,
                    "target holds bytes nobody ever committed"
                );
            }
            Err(e) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
                prop_assert_eq!(has_old, 0, "a faulted overwrite must never lose the old entry");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_and_memo_stores_never_panic_under_injected_faults(
        site in 0u64..24,
        kind_pick in 0usize..4,
        payload in proptest::collection::vec((0usize..256).prop_map(|b| b as u8), 0..48),
    ) {
        use matelda::ckpt::{CheckpointStore, FaultKind, InjectAt, Manifest, Vfs};
        use matelda::serve::{CacheRead, DetectOutcome, MemoCache};
        let kind = [
            FaultKind::Errno(std::io::ErrorKind::StorageFull),
            FaultKind::Errno(std::io::ErrorKind::Other),
            FaultKind::ShortWrite,
            FaultKind::TornRename,
        ][kind_pick];
        let manifest = Manifest { config_hash: 1, lake_fingerprint: 2, seed: 3, budget: 4, threads: 2 };

        // Checkpoint store: open, save twice, load back. Every step is
        // allowed to fail — reaching the end without a panic, and any
        // successful load returning exactly the saved bytes, is the
        // property.
        let dir = unique_tmp_dir("ckpt_no_panic");
        let vfs = Vfs::with_injector(InjectAt::new(site, kind));
        if let Ok(store) = CheckpointStore::open_with(&dir, manifest, true, vfs) {
            let _ = store.save_stage("embed", &payload);
            let _ = store.save_stage("featurize", &payload);
            for stage in ["embed", "featurize"] {
                if let Ok(Some(loaded)) = store.load_stage(stage) {
                    prop_assert_eq!(&loaded, &payload, "a load that claims success must be exact");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);

        // Memo-cache: same drill. A Hit must be the exact outcome; Miss
        // and Corrupt are both acceptable under injected faults.
        let outcome = DetectOutcome {
            digest: 0xFEED, labels_used: 1, n_domain_folds: 2, n_quality_folds: 3,
            flagged: 4, quarantined_tables: 0, stages_run: 6, stages_restored: 0,
            cached: false, degraded: false,
        };
        let dir = unique_tmp_dir("memo_no_panic");
        let vfs = Vfs::with_injector(InjectAt::new(site, kind));
        if let Ok(cache) = MemoCache::open_with(&dir, vfs) {
            let _ = cache.store(9, &outcome);
            match cache.load(9) {
                CacheRead::Hit(got) => prop_assert_eq!(got, outcome),
                CacheRead::Miss | CacheRead::Corrupt => {}
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A per-case unique scratch dir (proptest cases run many times per
/// process; the counter keeps them from colliding).
fn unique_tmp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("matelda_pt_{tag}_{}_{n}", std::process::id()))
}
