//! Observability contract tests (DESIGN.md §7): tracing is read-only.
//!
//! * Results are bit-identical with tracing on or off, at any thread
//!   count — spans, events and metrics never feed back into the run.
//! * A traced run's span tree covers the run and every stage, and the
//!   metrics registry agrees with the run's own report.
//! * Observability stays out of the durability envelope: a traced
//!   process resumes checkpoints written by an untraced one (and vice
//!   versa) bit-identically, because snapshots and manifests never
//!   contain observability state.

use matelda::core::{Durability, Matelda, MateldaConfig, Obs, Oracle};
use matelda::lakegen::{GeneratedLake, QuintetLake};
use std::path::PathBuf;

const STAGES: [&str; 6] =
    ["embed", "featurize", "domain_folds", "quality_folds", "label", "classify"];

fn lake() -> GeneratedLake {
    QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(19)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matelda_obs_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn traced_runs_are_bit_identical_across_thread_counts_and_to_untraced() {
    let gl = lake();
    let budget = 20;
    let run = |threads: usize, obs: Obs| {
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(MateldaConfig { threads, ..Default::default() }).with_obs(obs).detect(
            &gl.dirty,
            &mut oracle,
            budget,
        )
    };
    let base = run(1, Obs::disabled());
    for threads in [1, 2, 4] {
        let traced = run(threads, Obs::enabled());
        assert_eq!(traced.predicted, base.predicted, "threads={threads}");
        assert_eq!(traced.labels_used, base.labels_used, "threads={threads}");
        assert_eq!(traced.n_domain_folds, base.n_domain_folds, "threads={threads}");
        assert_eq!(traced.n_quality_folds, base.n_quality_folds, "threads={threads}");
        assert_eq!(traced.quarantine, base.quarantine, "threads={threads}");
    }
}

#[test]
fn trace_covers_the_run_and_every_stage_and_agrees_with_the_report() {
    let gl = lake();
    let obs = Obs::enabled();
    let mut oracle = Oracle::new(&gl.errors);
    let result = Matelda::new(MateldaConfig { threads: 2, ..Default::default() })
        .with_obs(obs.clone())
        .detect(&gl.dirty, &mut oracle, 20);

    // Exactly one run span; the six stage spans nest under it in
    // pipeline order.
    let spans = obs.spans();
    let runs: Vec<_> = spans.iter().filter(|s| s.cat == "run").collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].name, "detect");
    let stages: Vec<_> = spans.iter().filter(|s| s.cat == "stage").collect();
    assert_eq!(stages.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(), STAGES);
    for s in &stages {
        assert_eq!(s.parent, runs[0].id, "stage {} must nest under the run span", s.name);
    }
    // Executor spans nest under their stage, never under the run.
    for s in spans.iter().filter(|s| s.cat == "exec") {
        assert!(
            stages.iter().any(|st| st.id == s.parent),
            "exec span {} has non-stage parent {}",
            s.name,
            s.parent
        );
    }
    assert_eq!(obs.events_named("stage.end").len(), STAGES.len());

    // The registry agrees with the run's own numbers.
    assert_eq!(obs.counter("stage.items.embed"), Some(gl.dirty.n_tables() as u64));
    assert_eq!(obs.counter("label.labels_used"), Some(result.labels_used as u64));
    assert_eq!(obs.counter("label.budget"), Some(20));
    let fold_sizes = obs.histogram("quality_folds.fold_size").expect("fold-size histogram");
    assert_eq!(fold_sizes.count, result.n_quality_folds as u64);
    assert_eq!(fold_sizes.sum as usize, gl.dirty.n_cells(), "folds partition the lake's cells");

    // Every classify work item records which GBM kernel trained it;
    // binned + exact must account for every fitted model.
    let fits = obs.counter("classify.binned_fits").unwrap_or(0)
        + obs.counter("classify.exact_fits").unwrap_or(0);
    let models = result
        .report
        .stage("classify")
        .and_then(|s| s.metric("models"))
        .expect("classify model count") as u64;
    assert_eq!(fits, models, "kernel counters must cover every classify fit");

    // The report's per-stage wall times come from the same spans.
    assert_eq!(result.report.stages.len(), STAGES.len());
    for st in &result.report.stages {
        assert!(st.wall_secs >= 0.0);
    }
}

#[test]
fn traced_resume_reads_untraced_checkpoints_bit_identically() {
    let gl = lake();
    let budget = 20;
    let dir = tmp_dir("resume");

    // A clean, untraced reference run (no checkpoints involved).
    let mut oracle = Oracle::new(&gl.errors);
    let reference = Matelda::default().detect(&gl.dirty, &mut oracle, budget);

    // An untraced durable run commits every stage...
    let write =
        Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
    let mut oracle = Oracle::new(&gl.errors);
    Matelda::default().detect_durable(&gl.dirty, &mut oracle, budget, &write).expect("durable run");

    // ...and a *traced* process resumes them: observability is not part
    // of the manifest or the snapshots, so the checkpoints are accepted
    // and every stage restores.
    let obs = Obs::enabled();
    let resume =
        Durability { checkpoint_dir: Some(dir.clone()), resume: true, ..Default::default() };
    let mut oracle = Oracle::new(&gl.errors);
    let resumed = Matelda::default()
        .with_obs(obs.clone())
        .detect_durable(&gl.dirty, &mut oracle, budget, &resume)
        .expect("traced resume");

    assert_eq!(resumed.predicted, reference.predicted);
    assert_eq!(resumed.labels_used, reference.labels_used);
    assert_eq!(resumed.quarantine, reference.quarantine);
    assert_eq!(obs.counter("ckpt.restored_stages"), Some(STAGES.len() as u64));
    assert_eq!(obs.events_named("ckpt.restore").len(), STAGES.len());
    assert_eq!(obs.events_named("ckpt.load").len(), STAGES.len());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn exported_artifacts_are_deterministic_given_identical_metric_state() {
    // Two traced runs of the same config produce the same *metric*
    // export modulo timing-derived values; the structural parts — names,
    // counter values, histogram counts — must match exactly. Compare
    // counters only, which carry no wall-clock.
    let gl = lake();
    let run = || {
        let obs = Obs::enabled();
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(MateldaConfig { threads: 2, ..Default::default() })
            .with_obs(obs.clone())
            .detect(&gl.dirty, &mut oracle, 20);
        obs
    };
    let (a, b) = (run(), run());
    for name in [
        "stage.items.embed",
        "stage.items.featurize",
        "stage.items.quality_folds",
        "label.labels_used",
        "label.anchor_feature_lookups",
        "quality_folds.budget",
        "faults.items",
    ] {
        assert_eq!(a.counter(name), b.counter(name), "counter {name} diverged between runs");
    }
    assert_eq!(
        a.histogram("quality_folds.fold_size").map(|h| h.counts),
        b.histogram("quality_folds.fold_size").map(|h| h.counts),
        "fold-size distribution diverged between runs"
    );
}
