//! Integration tests for the extension modules: repair suggestion,
//! composite FD mining, the random-forest learner and the
//! uncertainty-labeling strategy — all exercised end-to-end on generated
//! lakes.

use matelda::core::{
    suggest_repairs, LabelingStrategy, Matelda, MateldaConfig, Oracle, RepairStrategy,
};
use matelda::fd::tane::partition_product;
use matelda::fd::{mine_composite, CompositeFd, Partition};
use matelda::lakegen::{DGovLake, QuintetLake};
use matelda::ml::{ClassifierKind, RandomForestConfig};
use matelda::table::{Confusion, Table};
use matelda::text::SpellChecker;

#[test]
fn repairs_restore_a_meaningful_fraction_of_clean_values() {
    // Seed chosen so the generated lake contains both spelling typos and
    // FD-violating swaps in repairable positions (some seeds place almost
    // no FD-repairable errors, which would make the strategy-diversity
    // assertion below vacuous).
    let lake = QuintetLake::default().generate(4);
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(MateldaConfig::default()).detect(
        &lake.dirty,
        &mut oracle,
        3 * lake.dirty.n_columns(),
    );
    let spell = SpellChecker::english();
    let repairs = suggest_repairs(&lake.dirty, &result.predicted, &spell);
    assert!(!repairs.is_empty(), "repairs should be proposed");
    let restored = repairs.iter().filter(|r| r.proposed == lake.clean.cell(r.cell)).count();
    let rate = restored as f64 / repairs.len() as f64;
    assert!(rate > 0.4, "only {rate:.2} of repairs restore the clean value");
    // Every strategy should appear somewhere on a mixed-error lake.
    let strategies: std::collections::HashSet<_> =
        repairs.iter().map(|r| format!("{:?}", r.strategy)).collect();
    assert!(strategies.len() >= 2, "{strategies:?}");
    // Confidence stays in range.
    assert!(repairs.iter().all(|r| r.confidence > 0.0 && r.confidence <= 1.0));
    let _ = RepairStrategy::FdMajority; // used via Debug above
}

#[test]
fn composite_fds_found_on_generated_domain_tables() {
    // Generated domain tables carry entity->attribute FDs; the composite
    // miner must agree with the unary miner at level 1 on those and never
    // produce a violated dependency.
    let lake = DGovLake::ntr().with_n_tables(6).generate(3);
    for table in &lake.clean.tables {
        let fds = mine_composite(table, 2);
        for fd in &fds {
            assert!(holds(table, fd), "{:?} does not hold on {}", fd, table.name);
        }
    }
}

fn holds(table: &Table, fd: &CompositeFd) -> bool {
    use std::collections::HashMap;
    let mut seen: HashMap<Vec<&str>, &str> = HashMap::new();
    for r in 0..table.n_rows() {
        let key: Vec<&str> = fd.lhs.iter().map(|&c| table.cell(r, c)).collect();
        let value = table.cell(r, fd.rhs);
        if let Some(prev) = seen.insert(key, value) {
            if prev != value {
                return false;
            }
        }
    }
    true
}

#[test]
fn partition_product_is_commutative() {
    let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(2);
    let t = &lake.clean.tables[2];
    let pa = Partition::of_column(t, 1);
    let pb = Partition::of_column(t, 2);
    let ab = partition_product(&pa, &pb, t.n_rows());
    let ba = partition_product(&pb, &pa, t.n_rows());
    assert_eq!(ab.groups, ba.groups);
}

#[test]
fn random_forest_pipeline_is_competitive() {
    let lake = QuintetLake { rows_per_table: 60, ..Default::default() }.generate(9);
    let budget = 3 * lake.dirty.n_columns();
    let run = |kind: ClassifierKind| {
        let mut oracle = Oracle::new(&lake.errors);
        let cfg = MateldaConfig { classifier: kind, ..Default::default() };
        let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, budget);
        Confusion::from_masks(&r.predicted, &lake.errors).f1()
    };
    let gbm = run(ClassifierKind::default());
    let rf = run(ClassifierKind::RandomForest(RandomForestConfig::default()));
    assert!(rf > 0.25, "forest f1 {rf}");
    // Close race: the features dominate the learner choice.
    assert!((gbm - rf).abs() < 0.25, "gbm {gbm} vs rf {rf}");
}

#[test]
fn uncertainty_labeling_stays_within_budget_slack() {
    let lake = DGovLake::ntr().with_n_tables(12).generate(4);
    let budget = 2 * lake.dirty.n_columns();
    let cfg =
        MateldaConfig { labeling: LabelingStrategy::UncertaintyRefinement, ..Default::default() };
    let mut oracle = Oracle::new(&lake.errors);
    let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, budget);
    assert!(r.labels_used <= budget + 2 * r.n_domain_folds);
    let conf = Confusion::from_masks(&r.predicted, &lake.errors);
    assert!(conf.f1() > 0.2, "adaptive f1 {}", conf.f1());
}
