//! Cross-crate integration tests: the full Matelda pipeline over generated
//! lakes, exercising every layer (lakegen → errorgen → detect → cluster →
//! ml → core) together.

use matelda::core::{DomainFolding, Matelda, MateldaConfig, Oracle, TrainingStrategy};
use matelda::detect::FeatureConfig;
use matelda::lakegen::{DGovLake, QuintetLake, ReinLake};
use matelda::table::Confusion;

fn f1_of(config: MateldaConfig, lake: &matelda::lakegen::GeneratedLake, budget: usize) -> f64 {
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(config).detect(&lake.dirty, &mut oracle, budget);
    Confusion::from_masks(&result.predicted, &lake.errors).f1()
}

#[test]
fn quintet_end_to_end_beats_random_guessing() {
    let lake = QuintetLake { rows_per_table: 80, ..Default::default() }.generate(11);
    let budget = 2 * lake.dirty.n_columns();
    let f1 = f1_of(MateldaConfig::default(), &lake, budget);
    // Random guessing at the 9% error rate yields F1 ≈ 0.16 at best.
    assert!(f1 > 0.35, "end-to-end f1 {f1} too low");
}

#[test]
fn more_labels_do_not_hurt_much() {
    // F1 at 5 tuples/table should comfortably exceed F1 at a half tuple.
    let lake = QuintetLake { rows_per_table: 80, ..Default::default() }.generate(3);
    let small = f1_of(MateldaConfig::default(), &lake, lake.dirty.n_columns() / 2);
    let large = f1_of(MateldaConfig::default(), &lake, 5 * lake.dirty.n_columns());
    assert!(large > small, "budget increase should help: {small} -> {large}");
}

#[test]
fn rein_lake_detection_works() {
    let lake = ReinLake { rows_per_table: 60, ..Default::default() }.generate(5);
    let f1 = f1_of(MateldaConfig::default(), &lake, 2 * lake.dirty.n_columns());
    assert!(f1 > 0.4, "REIN f1 {f1}");
}

#[test]
fn multi_domain_lake_forms_multiple_folds() {
    let lake = DGovLake::ntr().with_n_tables(24).generate(9);
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(MateldaConfig::default()).detect(
        &lake.dirty,
        &mut oracle,
        2 * lake.dirty.n_columns(),
    );
    assert!(result.n_domain_folds > 1, "24 tables over many domains should fold");
    assert!(result.n_domain_folds < 24, "identical-domain tables should share folds");
}

#[test]
fn edf_variant_is_close_to_standard_in_f1() {
    // Paper §4.5.1: dropping domain folding barely changes effectiveness
    // (it changes runtime).
    let lake = DGovLake::ntr().with_n_tables(16).generate(2);
    let budget = 2 * lake.dirty.n_columns();
    let standard = f1_of(MateldaConfig::default(), &lake, budget);
    let edf = f1_of(
        MateldaConfig { domain_folding: DomainFolding::ExtremeDomainFolding, ..Default::default() },
        &lake,
        budget,
    );
    assert!((standard - edf).abs() < 0.25, "standard {standard} vs EDF {edf}");
}

#[test]
fn ablations_run_and_nod_hurts_on_outlier_lake() {
    // On an outlier-only lake, removing the outlier detectors must hurt.
    let lake = DGovLake::no().with_n_tables(16).generate(4);
    let budget = 3 * lake.dirty.n_columns();
    let full = f1_of(MateldaConfig::default(), &lake, budget);
    let nod = f1_of(
        MateldaConfig { features: FeatureConfig::no_outliers(), ..Default::default() },
        &lake,
        budget,
    );
    assert!(full > nod, "full {full} should beat NOD {nod} on DGov-NO");
}

#[test]
fn training_strategies_all_produce_reasonable_results() {
    let lake = QuintetLake { rows_per_table: 60, ..Default::default() }.generate(8);
    let budget = 3 * lake.dirty.n_columns();
    for strategy in [
        TrainingStrategy::PerColumn,
        TrainingStrategy::PerDomainFold,
        TrainingStrategy::UnlabeledCellFolds,
    ] {
        let f1 = f1_of(MateldaConfig { training: strategy, ..Default::default() }, &lake, budget);
        assert!(f1 > 0.2, "strategy {strategy:?} f1 {f1}");
    }
}

#[test]
fn labels_never_exceed_budget() {
    // Since the per-fold floor was clamped, the budget is a hard ceiling.
    let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(1);
    let budget = 2 * lake.dirty.n_columns();
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, budget);
    assert!(result.labels_used <= budget);
}

/// Snapshot of the single-threaded staged run on `QuintetLake { rows: 40 }
/// .generate(7)` at 2 tuples/table, equal to the pre-refactor monolith's
/// output on the same lake. Guards both the refactor (stage composition
/// changes nothing) and the determinism contract (thread count changes
/// nothing).
#[test]
fn staged_engine_is_bit_identical_across_thread_counts() {
    let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(7);
    let budget = 2 * lake.dirty.n_columns();
    let run = |threads: usize| {
        let mut oracle = Oracle::new(&lake.errors);
        Matelda::new(MateldaConfig { threads, ..Default::default() }).detect(
            &lake.dirty,
            &mut oracle,
            budget,
        )
    };

    let single = run(1);
    assert_eq!(single.predicted.count(), 115);
    assert_eq!(single.labels_used, 66);
    assert_eq!(single.n_domain_folds, 5);
    assert_eq!(single.n_quality_folds, 66);

    for threads in [2, 4] {
        let multi = run(threads);
        assert_eq!(multi.predicted, single.predicted, "mask differs at {threads} threads");
        assert_eq!(multi.labels_used, single.labels_used);
        assert_eq!(multi.n_domain_folds, single.n_domain_folds);
        assert_eq!(multi.n_quality_folds, single.n_quality_folds);
        assert_eq!(multi.report.threads, threads);
    }
}
