//! End-to-end test of the `matelda-cli` binary: generate → profile →
//! detect → repair over a real temp directory, driving the compiled
//! binary through `std::process::Command` (the way a user would).

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    // Cargo exposes the path of sibling binaries to integration tests.
    Command::new(env!("CARGO_BIN_EXE_matelda-cli"))
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matelda_cli_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn generate_profile_detect_repair_round_trip() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();

    // generate
    let out = cli()
        .args(["generate", &dir_s, "--lake", "dgov-ntr", "--tables", "6", "--seed", "3"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote 6 tables"), "{stdout}");
    assert!(dir.join("dirty").exists() && dir.join("clean").exists());

    // profile
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let out = cli().args(["profile", &dirty]).output().expect("spawn profile");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6 tables"), "{stdout}");
    assert!(stdout.contains("distinct"), "{stdout}");
    assert!(stdout.contains("FDs"), "profile should mine FDs: {stdout}");

    // detect + repair
    let clean = dir.join("clean").to_string_lossy().to_string();
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--repair", "yes"])
        .output()
        .expect("spawn detect");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evaluation vs clean"), "{stdout}");
    assert!(stdout.contains("repair suggestions"), "{stdout}");
    // The f1 line should report a percentage (sanity that metrics printed).
    assert!(stdout.contains("f1 "), "{stdout}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn detect_requires_clean_dir() {
    let out = cli().args(["detect", "/tmp/nowhere"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--clean"));
}

#[test]
fn tolerant_read_modes_survive_a_corrupted_file() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out = cli()
        .args(["generate", &dir_s, "--lake", "quintet", "--seed", "5"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();

    // Make one dirty file ragged: an extra trailing field on the first
    // data row. Repair truncates it back to the header width, so the
    // dirty/clean cell alignment survives.
    let victim = std::fs::read_dir(dir.join("dirty"))
        .expect("read dirty dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "csv"))
        .expect("a csv file");
    let contents = std::fs::read_to_string(&victim).expect("read victim");
    let ragged: Vec<String> = contents
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 1 { format!("{l},__extra__") } else { l.to_string() })
        .collect();
    std::fs::write(&victim, ragged.join("\n") + "\n").expect("write victim");

    // Strict (the default) refuses the lake.
    let out = cli().args(["detect", &dirty, "--clean", &clean]).output().expect("strict");
    assert!(!out.status.success(), "strict mode must fail on a ragged file");

    // Repair mode loads it, notes the repair, and completes detection.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--read", "repair", "--on-error", "skip"])
        .output()
        .expect("repair");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loaded after repairs"), "{stdout}");
    assert!(stdout.contains("evaluation vs clean"), "{stdout}");

    // Unknown policies are rejected up front.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--on-error", "bogus"])
        .output()
        .expect("bad policy");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --on-error"));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn variant_flag_is_validated() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out = cli()
        .args(["generate", &dir_s, "--lake", "quintet", "--seed", "1"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--variant", "bogus"])
        .output()
        .expect("detect");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown variant"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
