//! End-to-end test of the `matelda-cli` binary: generate → profile →
//! detect → repair over a real temp directory, driving the compiled
//! binary through `std::process::Command` (the way a user would).

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    // Cargo exposes the path of sibling binaries to integration tests.
    Command::new(env!("CARGO_BIN_EXE_matelda-cli"))
}

fn tmp_dir() -> PathBuf {
    // Unique per call: the test harness runs tests in parallel threads,
    // so a process-wide path would let tests delete each other's lakes.
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("matelda_cli_it_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn generate_profile_detect_repair_round_trip() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();

    // generate
    let out = cli()
        .args(["generate", &dir_s, "--lake", "dgov-ntr", "--tables", "6", "--seed", "3"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote 6 tables"), "{stdout}");
    assert!(dir.join("dirty").exists() && dir.join("clean").exists());

    // profile
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let out = cli().args(["profile", &dirty]).output().expect("spawn profile");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6 tables"), "{stdout}");
    assert!(stdout.contains("distinct"), "{stdout}");
    assert!(stdout.contains("FDs"), "profile should mine FDs: {stdout}");

    // detect + repair
    let clean = dir.join("clean").to_string_lossy().to_string();
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--repair", "yes"])
        .output()
        .expect("spawn detect");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evaluation vs clean"), "{stdout}");
    assert!(stdout.contains("repair suggestions"), "{stdout}");
    // The f1 line should report a percentage (sanity that metrics printed).
    assert!(stdout.contains("f1 "), "{stdout}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "bad arguments exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn detect_requires_clean_dir() {
    let out = cli().args(["detect", "/tmp/nowhere"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "bad arguments exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--clean"));
}

#[test]
fn help_documents_flags_and_exit_codes() {
    let out = cli().arg("--help").output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "exit codes",
        "--checkpoint-dir",
        "--resume",
        "--stage-timeout-ms",
        "--max-quarantined",
        "--trace",
        "--metrics",
        "never silently reused",
    ] {
        assert!(stdout.contains(needle), "--help must mention {needle:?}: {stdout}");
    }
}

/// The `--trace` / `--metrics` contract: the trace directory gets all
/// three artifacts, `--metrics` prints the registry, the run's digest is
/// identical with and without tracing, and a failing run still writes
/// its trace while keeping its own exit code.
#[test]
fn trace_and_metrics_flags_export_diagnostics_without_changing_results() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out =
        cli().args(["generate", &dir_s, "--lake", "quintet", "--seed", "5"]).output().expect("gen");
    assert_eq!(out.status.code(), Some(0));
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();
    let digest_of = |stdout: &str| {
        stdout.lines().find_map(|l| l.strip_prefix("digest: ")).expect("digest line").to_string()
    };

    // Untraced reference run.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--budget-cells", "20", "--threads", "2"])
        .output()
        .expect("plain detect");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let plain_digest = digest_of(&String::from_utf8_lossy(&out.stdout));

    // Traced run: same digest, artifacts present, metrics printed.
    let trace = dir.join("trace").to_string_lossy().to_string();
    let out = cli()
        .args([
            "detect",
            &dirty,
            "--clean",
            &clean,
            "--budget-cells",
            "20",
            "--threads",
            "2",
            "--trace",
            &trace,
            "--metrics",
        ])
        .output()
        .expect("traced detect");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(digest_of(&stdout), plain_digest, "tracing must not change results");
    assert!(stdout.contains("\"counters\""), "--metrics must print the registry: {stdout}");
    for file in ["trace.json", "events.jsonl", "metrics.json"] {
        let path = dir.join("trace").join(file);
        assert!(path.exists(), "--trace must write {file}");
        assert!(std::fs::metadata(&path).expect("stat").len() > 0, "{file} empty");
    }
    let trace_json =
        std::fs::read_to_string(dir.join("trace").join("trace.json")).expect("read trace");
    assert!(trace_json.contains("\"traceEvents\""), "chrome://tracing shape");
    assert!(trace_json.contains("\"name\":\"detect\""), "run span present");

    // A failing run (ingest error: dirty dir with no CSVs) keeps its
    // own exit code — --trace never masks the failure class.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).expect("mkdir");
    let trace2 = dir.join("trace2").to_string_lossy().to_string();
    let out = cli()
        .args(["detect", &empty.to_string_lossy(), "--clean", &clean, "--trace", &trace2])
        .output()
        .expect("failing detect");
    assert_eq!(out.status.code(), Some(3), "ingest failure stays exit 3 under --trace");

    // --trace without a value is a usage error.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--trace", "--metrics"])
        .output()
        .expect("bad trace flag");
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The exit-code contract documented in `--help`: each failure class has
/// its own code, so scripts can tell a typo (2) from a broken lake (3),
/// an over-degraded run (4) or a rejected checkpoint (5).
#[test]
fn exit_codes_distinguish_failure_classes() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out =
        cli().args(["generate", &dir_s, "--lake", "quintet", "--seed", "9"]).output().expect("gen");
    assert_eq!(out.status.code(), Some(0));
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();

    // 2 — unparseable flag value.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--budget-cells", "lots"])
        .output()
        .expect("bad number");
    assert_eq!(out.status.code(), Some(2), "bad numeric flag exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget-cells"));

    // 2 — --resume without a checkpoint directory.
    let out =
        cli().args(["detect", &dirty, "--clean", &clean, "--resume"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "--resume without --checkpoint-dir exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));

    // 2 — an unknown flag (a typo must not silently run with defaults).
    let out =
        cli().args(["detect", &dirty, "--clean", &clean, "--thread", "4"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "unknown flag exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--thread"));

    // 1 — a blown stage deadline under --on-error fail aborts as a
    // runtime failure, not a raw panic trace (exit 101).
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--stage-timeout-ms", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "fail-policy deadline exits 1");
    assert!(String::from_utf8_lossy(&out.stderr).contains("run aborted"));

    // 3 — the lake cannot be ingested.
    let out = cli()
        .args(["detect", dir.join("absent").to_str().unwrap(), "--clean", &clean])
        .output()
        .expect("missing dir");
    assert_eq!(out.status.code(), Some(3), "ingest failure exits 3");

    // 4 — degraded run over the quarantine ceiling: an injected embed
    // fault under --on-error skip quarantines one table.
    let out = cli()
        .env("MATELDA_FAULTPOINTS", "embed:1")
        .args(["detect", &dirty, "--clean", &clean, "--on-error", "skip", "--max-quarantined", "0"])
        .output()
        .expect("quarantine ceiling");
    assert_eq!(out.status.code(), Some(4), "quarantine ceiling exits 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-quarantined"));

    // 5 — resuming a checkpoint written under a different label budget.
    let ckpt = dir.join("ckpt").to_string_lossy().to_string();
    let out = cli()
        .args([
            "detect",
            &dirty,
            "--clean",
            &clean,
            "--budget-cells",
            "20",
            "--checkpoint-dir",
            &ckpt,
        ])
        .output()
        .expect("checkpointed run");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args([
            "detect",
            &dirty,
            "--clean",
            &clean,
            "--budget-cells",
            "10",
            "--checkpoint-dir",
            &ckpt,
            "--resume",
        ])
        .output()
        .expect("mismatched resume");
    assert_eq!(out.status.code(), Some(5), "checkpoint mismatch exits 5");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("label budget"),
        "mismatch names the differing field: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn tolerant_read_modes_survive_a_corrupted_file() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out = cli()
        .args(["generate", &dir_s, "--lake", "quintet", "--seed", "5"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();

    // Make one dirty file ragged: an extra trailing field on the first
    // data row. Repair truncates it back to the header width, so the
    // dirty/clean cell alignment survives.
    let victim = std::fs::read_dir(dir.join("dirty"))
        .expect("read dirty dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "csv"))
        .expect("a csv file");
    let contents = std::fs::read_to_string(&victim).expect("read victim");
    let ragged: Vec<String> = contents
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 1 { format!("{l},__extra__") } else { l.to_string() })
        .collect();
    std::fs::write(&victim, ragged.join("\n") + "\n").expect("write victim");

    // Strict (the default) refuses the lake: ingest failure, exit 3.
    let out = cli().args(["detect", &dirty, "--clean", &clean]).output().expect("strict");
    assert_eq!(out.status.code(), Some(3), "strict mode must fail on a ragged file with exit 3");

    // Repair mode loads it, notes the repair, and completes detection.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--read", "repair", "--on-error", "skip"])
        .output()
        .expect("repair");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loaded after repairs"), "{stdout}");
    assert!(stdout.contains("evaluation vs clean"), "{stdout}");

    // Unknown policies are rejected up front.
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--on-error", "bogus"])
        .output()
        .expect("bad policy");
    assert_eq!(out.status.code(), Some(2), "unknown policy exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --on-error"));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn variant_flag_is_validated() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out = cli()
        .args(["generate", &dir_s, "--lake", "quintet", "--seed", "1"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();
    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--variant", "bogus"])
        .output()
        .expect("detect");
    assert_eq!(out.status.code(), Some(2), "unknown variant exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown variant"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn failure_report_names_misclassified_cells_with_evidence() {
    let dir = tmp_dir();
    let dir_s = dir.to_string_lossy().to_string();
    let out = cli()
        .args(["generate", &dir_s, "--lake", "quintet", "--seed", "11"])
        .output()
        .expect("generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let dirty = dir.join("dirty").to_string_lossy().to_string();
    let clean = dir.join("clean").to_string_lossy().to_string();
    let report_dir = dir.join("failures");
    let report_dir_s = report_dir.to_string_lossy().to_string();

    // Incompatible with durability: the explained run has no checkpoints.
    let out = cli()
        .args([
            "detect",
            &dirty,
            "--clean",
            &clean,
            "--failure-report",
            &report_dir_s,
            "--checkpoint-dir",
            &dir.join("ckpt").to_string_lossy(),
        ])
        .output()
        .expect("incompatible flags");
    assert_eq!(out.status.code(), Some(2), "must reject --failure-report with --checkpoint-dir");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--failure-report"));

    let out = cli()
        .args(["detect", &dirty, "--clean", &clean, "--failure-report", &report_dir_s])
        .output()
        .expect("detect with failure report");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("failure report ("), "{stdout}");

    let md = std::fs::read_to_string(report_dir.join("failure_report.md")).expect("markdown");
    assert!(md.starts_with("# Matelda failure analysis"), "{md}");
    assert!(md.contains("False negatives"), "{md}");
    // Exemplar rows carry a concrete (table,row,col) cell, a ground-truth
    // error type inferred from the dirty/clean diff, and the names of the
    // detector features that fired.
    assert!(md.contains("| ("), "exemplar rows must name a cell: {md}");
    assert!(
        ["| MV |", "| T |", "| FI |", "| NO |", "| VAD |"].iter().any(|t| md.contains(t)),
        "an FN exemplar must carry its inferred error type: {md}"
    );
    assert!(
        ["tf_hist", "gaussian", "typo", "fd_structural", "nv_", "null_flag", "(none)"]
            .iter()
            .any(|f| md.contains(f)),
        "exemplars must list fired features: {md}"
    );

    let json = std::fs::read_to_string(report_dir.join("failure_report.json")).expect("json");
    assert!(json.starts_with("{\"report\":\"matelda-failures\""), "{json}");
    assert!(json.contains("\"truth_type\""), "{json}");
    assert!(json.contains("\"fired\""), "{json}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
